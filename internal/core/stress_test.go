package core

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"discs/internal/cmac"
	"discs/internal/packet"
)

// TestSnapshotChurnNoTornVerdicts hammers the forwarding path (both
// families, single-packet and batch entry points) while a controller
// goroutine churns the function tables and key tables. It asserts the
// snapshot coherence the lock-free rework guarantees:
//
//   - a packet reported stamped always carries a mark made with the one
//     key the controller ever installs (no stamp decided against one key
//     snapshot and executed against another);
//   - a correctly stamped packet is never dropped at the verification
//     end, whatever interleaving of Install/Remove/Purge/SetVerifyKey/
//     RemovePeer it races with (either verification is active and the
//     mark matches, or it is inactive/unkeyed and the packet passes).
//
// Run with -race to also catch data races between the mutators and the
// lock-free readers.
func TestSnapshotChurnNoTornVerdicts(t *testing.T) {
	key := make([]byte, 16)
	key[5] = 0xaa
	kmac, err := cmac.New(key)
	if err != nil {
		t.Fatal(err)
	}

	pfx := testPfx2AS(t)
	pfx.Insert(netip.MustParsePrefix("2001:db8:1::/48"), 1)
	pfx.Insert(netip.MustParsePrefix("2001:db8:3::/48"), 3)
	v4pfx := netip.MustParsePrefix("10.3.0.0/16")
	v6pfx := netip.MustParsePrefix("2001:db8:3::/48")

	peerTables := NewTables(1, pfx)
	peerTables.Keys.SetStampKey(3, key)
	peer := testRouter(peerTables, 1)

	victimTables := NewTables(3, pfx)
	victimTables.Keys.SetVerifyKey(1, key)
	victim := testRouter(victimTables, 2)

	now := t0.Add(time.Minute)
	done := make(chan struct{})

	// Controller: continuous invocation/expiry/rekey churn. Every state
	// it ever publishes keeps the invariants above satisfiable: the only
	// stamp key is `key`, and whenever the victim knows a verify key for
	// AS1 it is `key` (possibly in both rekey slots).
	var ctl sync.WaitGroup
	ctl.Add(1)
	go func() {
		defer ctl.Done()
		scratch := netip.MustParsePrefix("10.9.0.0/16")
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			switch i % 8 {
			case 0:
				peerTables.In[TableOutDst].Install(v4pfx, OpCDPStamp, t0, time.Hour, 0)
				peerTables.In[TableOutDst].Install(v6pfx, OpCDPStamp, t0, time.Hour, 0)
			case 1:
				victimTables.In[TableInDst].Install(v4pfx, OpCDPVerify, t0, time.Hour, 0)
				victimTables.In[TableInDst].Install(v6pfx, OpCDPVerify, t0, time.Hour, 0)
			case 2:
				peerTables.In[TableOutDst].Remove(v4pfx, OpCDPStamp)
			case 3:
				victimTables.In[TableInDst].Remove(v6pfx, OpCDPVerify)
			case 4:
				peerTables.Keys.RemovePeer(3)
				peerTables.Keys.SetStampKey(3, key)
			case 5:
				// Rekey window with the same key in both slots, then close it.
				victimTables.Keys.SetVerifyKey(1, key)
				victimTables.Keys.DropPreviousVerifyKey(1)
			case 6:
				victimTables.Keys.RemovePeer(1)
				victimTables.Keys.SetVerifyKey(1, key)
			case 7:
				// Exercise Purge's rebuild with a short-lived entry that is
				// already expired at `now`.
				victimTables.In[TableInSrc].Install(scratch, OpSPFilter, t0, time.Millisecond, 0)
				victimTables.In[TableInSrc].Purge(now)
			}
		}
	}()

	const perG = 3000
	var fwd sync.WaitGroup
	for g := 0; g < 4; g++ {
		fwd.Add(1)
		go func(g int) {
			defer fwd.Done()
			for n := 0; n < perG; n++ {
				p := &packet.IPv4{
					TTL: 64, Protocol: packet.ProtoUDP,
					Src:     netip.AddrFrom4([4]byte{10, 1, byte(g), byte(n)}),
					Dst:     netip.AddrFrom4([4]byte{10, 3, 0, byte(n)}),
					Payload: []byte("churn"),
				}
				q := samplePacketV6()
				q.Src = netip.MustParseAddr("2001:db8:1::10")

				var verdicts []Verdict
				if n%2 == 0 {
					verdicts = append(verdicts,
						peer.ProcessOutbound(V4{p}, now),
						peer.ProcessOutbound(V6{q}, now))
				} else {
					verdicts = peer.ProcessOutboundBatch([]MarkCarrier{V4{p}, V6{q}}, now, verdicts)
				}
				for i, carrier := range []MarkCarrier{V4{p}, V6{q}} {
					switch verdicts[i] {
					case VerdictPass:
						// Stamp op uninstalled or key missing in that snapshot.
					case VerdictPassStamped:
						if ok, _ := carrier.Verify(kmac); !ok {
							t.Errorf("g%d n%d pkt%d: stamped mark does not match the only installed key", g, n, i)
							return
						}
						if w := victim.ProcessInbound(carrier, now); w == VerdictDrop {
							t.Errorf("g%d n%d pkt%d: genuine stamped packet dropped (torn verify state)", g, n, i)
							return
						}
					default:
						t.Errorf("g%d n%d pkt%d: verdict %v for genuine local traffic", g, n, i, verdicts[i])
						return
					}
				}
			}
		}(g)
	}

	fwd.Wait()
	close(done)
	ctl.Wait()
}
