package core

import (
	"net/netip"

	"discs/internal/cmac"
	"discs/internal/packet"
)

// MarkCarrier abstracts the per-family mark embedding so the data
// plane processes IPv4 and IPv6 packets uniformly: 29-bit marks in the
// IPID/FragmentOffset fields for IPv4 (§V-E), a 32-bit destination
// option for IPv6 (§V-F).
type MarkCarrier interface {
	// SrcAddr and DstAddr return the packet's addresses.
	SrcAddr() netip.Addr
	DstAddr() netip.Addr
	// Stamp writes the truncated CMAC of the packet's msg fields.
	Stamp(c *cmac.CMAC) error
	// Verify checks the mark against the key. For IPv4 the mark fields
	// always exist, so an unstamped packet simply fails verification;
	// for IPv6 a missing DISCS option fails verification.
	Verify(c *cmac.CMAC) bool
	// Erase removes the mark: IPv4 replaces the fields with the given
	// bits, IPv6 strips the DISCS option.
	Erase(random uint32)
	// MarkBits returns the mark width (29 for IPv4, 32 for IPv6),
	// which determines the brute-force forgery factor (§VI-E1).
	MarkBits() int
}

// V4 wraps an IPv4 packet as a MarkCarrier.
type V4 struct{ P *packet.IPv4 }

// SrcAddr returns the source address.
func (w V4) SrcAddr() netip.Addr { return w.P.Src }

// DstAddr returns the destination address.
func (w V4) DstAddr() netip.Addr { return w.P.Dst }

// Stamp writes the 29-bit truncated CMAC into IPID+FragOffset.
func (w V4) Stamp(c *cmac.CMAC) error {
	m := w.P.Msg()
	w.P.SetMark(c.Sum29(m[:]))
	return nil
}

// Verify recomputes the 29-bit CMAC and compares.
func (w V4) Verify(c *cmac.CMAC) bool {
	m := w.P.Msg()
	return c.Verify29(m[:], w.P.Mark())
}

// Erase replaces the mark fields with the supplied bits (§V-E: random
// bits after successful verification).
func (w V4) Erase(random uint32) { w.P.ScrubMark(random) }

// MarkBits returns 29.
func (w V4) MarkBits() int { return 29 }

// V6 wraps an IPv6 packet as a MarkCarrier.
type V6 struct{ P *packet.IPv6 }

// SrcAddr returns the source address.
func (w V6) SrcAddr() netip.Addr { return w.P.Src }

// DstAddr returns the destination address.
func (w V6) DstAddr() netip.Addr { return w.P.Dst }

// Stamp inserts the DISCS destination option carrying the 32-bit
// truncated CMAC.
func (w V6) Stamp(c *cmac.CMAC) error {
	m := w.P.Msg()
	return w.P.StampV6(c.Sum32(m[:]))
}

// Verify checks the DISCS option; absent option fails.
func (w V6) Verify(c *cmac.CMAC) bool {
	mac, ok := w.P.MarkV6()
	if !ok {
		return false
	}
	m := w.P.Msg()
	return c.Verify32(m[:], mac)
}

// Erase removes the DISCS option (and the destination options header
// when empty).
func (w V6) Erase(uint32) { w.P.UnstampV6() }

// MarkBits returns 32.
func (w V6) MarkBits() int { return 32 }

var (
	_ MarkCarrier = V4{}
	_ MarkCarrier = V6{}
)
