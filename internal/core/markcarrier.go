package core

import (
	"net/netip"

	"discs/internal/cmac"
	"discs/internal/packet"
)

// MarkCarrier abstracts the per-family mark embedding so the data
// plane processes IPv4 and IPv6 packets uniformly: 29-bit marks in the
// IPID/FragmentOffset fields for IPv4 (§V-E), a 32-bit destination
// option for IPv6 (§V-F).
//
// Stamp and Verify return the number of CMAC computations they ran so
// the router's MACsComputed counter reflects actual crypto cost
// (§VI-C2): a failed IPv6 stamp still computed its MAC, while a missing
// IPv6 option fails verification without computing anything.
type MarkCarrier interface {
	// SrcAddr and DstAddr return the packet's addresses.
	SrcAddr() netip.Addr
	DstAddr() netip.Addr
	// Stamp writes the truncated CMAC of the packet's msg fields and
	// returns the number of CMACs computed (even when err != nil).
	Stamp(c *cmac.CMAC) (macs int, err error)
	// Verify checks the mark against the key and returns the number of
	// CMACs computed. For IPv4 the mark fields always exist, so an
	// unstamped packet simply fails verification; for IPv6 a missing
	// DISCS option fails verification with zero computations.
	Verify(c *cmac.CMAC) (ok bool, macs int)
	// Erase removes the mark: IPv4 replaces the fields with the given
	// bits, IPv6 strips the DISCS option.
	Erase(random uint32)
	// MarkBits returns the mark width (29 for IPv4, 32 for IPv6),
	// which determines the brute-force forgery factor (§VI-E1).
	MarkBits() int
}

// scratchCarrier is the batch-path refinement of MarkCarrier: the same
// operations with caller-provided CMAC scratch buffers, so a burst of
// packets shares one Scratch instead of hitting the pool per MAC.
type scratchCarrier interface {
	stampWith(c *cmac.CMAC, s *cmac.Scratch) (macs int, err error)
	verifyWith(c *cmac.CMAC, s *cmac.Scratch) (ok bool, macs int)
}

// V4 wraps an IPv4 packet as a MarkCarrier.
type V4 struct{ P *packet.IPv4 }

// SrcAddr returns the source address.
func (w V4) SrcAddr() netip.Addr { return w.P.Src }

// DstAddr returns the destination address.
func (w V4) DstAddr() netip.Addr { return w.P.Dst }

// Stamp writes the 29-bit truncated CMAC into IPID+FragOffset.
func (w V4) Stamp(c *cmac.CMAC) (int, error) {
	m := w.P.Msg()
	w.P.SetMark(c.Sum29(m[:]))
	return 1, nil
}

func (w V4) stampWith(c *cmac.CMAC, s *cmac.Scratch) (int, error) {
	m := w.P.Msg()
	w.P.SetMark(c.Sum29With(m[:], s))
	return 1, nil
}

// Verify recomputes the 29-bit CMAC and compares.
func (w V4) Verify(c *cmac.CMAC) (bool, int) {
	m := w.P.Msg()
	return c.Verify29(m[:], w.P.Mark()), 1
}

func (w V4) verifyWith(c *cmac.CMAC, s *cmac.Scratch) (bool, int) {
	m := w.P.Msg()
	return c.Sum29With(m[:], s) == w.P.Mark()&(1<<29-1), 1
}

// Erase replaces the mark fields with the supplied bits (§V-E: random
// bits after successful verification).
func (w V4) Erase(random uint32) { w.P.ScrubMark(random) }

// MarkBits returns 29.
func (w V4) MarkBits() int { return 29 }

// V6 wraps an IPv6 packet as a MarkCarrier.
type V6 struct{ P *packet.IPv6 }

// SrcAddr returns the source address.
func (w V6) SrcAddr() netip.Addr { return w.P.Src }

// DstAddr returns the destination address.
func (w V6) DstAddr() netip.Addr { return w.P.Dst }

// Stamp inserts the DISCS destination option carrying the 32-bit
// truncated CMAC. The CMAC is computed before the option insertion can
// fail, so macs is 1 even on error.
func (w V6) Stamp(c *cmac.CMAC) (int, error) {
	m := w.P.Msg()
	return 1, w.P.StampV6(c.Sum32(m[:]))
}

func (w V6) stampWith(c *cmac.CMAC, s *cmac.Scratch) (int, error) {
	m := w.P.Msg()
	return 1, w.P.StampV6(c.Sum32With(m[:], s))
}

// Verify checks the DISCS option; an absent option fails without
// computing a CMAC.
func (w V6) Verify(c *cmac.CMAC) (bool, int) {
	mac, ok := w.P.MarkV6()
	if !ok {
		return false, 0
	}
	m := w.P.Msg()
	return c.Verify32(m[:], mac), 1
}

func (w V6) verifyWith(c *cmac.CMAC, s *cmac.Scratch) (bool, int) {
	mac, ok := w.P.MarkV6()
	if !ok {
		return false, 0
	}
	m := w.P.Msg()
	return c.Sum32With(m[:], s) == mac, 1
}

// Erase removes the DISCS option (and the destination options header
// when empty).
func (w V6) Erase(uint32) { w.P.UnstampV6() }

// MarkBits returns 32.
func (w V6) MarkBits() int { return 32 }

var (
	_ MarkCarrier    = V4{}
	_ MarkCarrier    = V6{}
	_ scratchCarrier = V4{}
	_ scratchCarrier = V6{}
)
