package core

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"discs/internal/lpm"
	"discs/internal/topology"
)

// window is the activation interval of one operation on one prefix.
// Invocation is always bounded by a duration (§IV-E1); when it expires
// the entry becomes inert and is lazily purged.
type window struct {
	start, end time.Time
	grace      time.Duration // tolerance interval for verify ops
}

func (w window) activeAt(now time.Time) bool {
	return !now.Before(w.start) && now.Before(w.end)
}

// graceAt reports whether now falls into the head or tail tolerance
// interval, during which verification ends only erase marks (§IV-E1).
func (w window) graceAt(now time.Time) bool {
	if !w.activeAt(now) {
		return false
	}
	return now.Before(w.start.Add(w.grace)) || !now.Before(w.end.Add(-w.grace))
}

// opWindows is the value stored per prefix in a function table: the
// set of scheduled operations with their activation windows.
type opWindows struct {
	wins map[Op]window
}

// FuncTable is one of the four data-plane function tables (§V-A),
// mapping prefixes (longest match) to scheduled operations. Lookups
// (ActiveOps) may run concurrently from many forwarding goroutines;
// mutations (Install/Remove/Purge, driven by the controller) take the
// write lock.
type FuncTable struct {
	kind TableKind
	mu   sync.RWMutex
	tbl  *lpm.Table[*opWindows]
}

// NewFuncTable creates an empty table of the given kind.
func NewFuncTable(kind TableKind) *FuncTable {
	return &FuncTable{kind: kind, tbl: lpm.New[*opWindows]()}
}

// Kind returns the table kind.
func (ft *FuncTable) Kind() TableKind { return ft.kind }

// Install schedules op on prefix for [start, start+duration), with the
// given grace tolerance. Re-installing extends/replaces the window —
// this is how a victim re-invokes with a longer duration (§IV-E1).
func (ft *FuncTable) Install(p netip.Prefix, op Op, start time.Time, duration, grace time.Duration) error {
	if duration <= 0 {
		return fmt.Errorf("core: non-positive duration %v", duration)
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ow, ok := ft.tbl.Get(p)
	if !ok {
		ow = &opWindows{wins: make(map[Op]window)}
		if err := ft.tbl.Insert(p, ow); err != nil {
			return err
		}
	}
	ow.wins[op] = window{start: start, end: start.Add(duration), grace: grace}
	return nil
}

// Remove deletes op from prefix immediately (used when quitting a
// protection early).
func (ft *FuncTable) Remove(p netip.Prefix, op Op) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if ow, ok := ft.tbl.Get(p); ok {
		delete(ow.wins, op)
		if len(ow.wins) == 0 {
			ft.tbl.Delete(p)
		}
	}
}

// ActiveOps returns the operations active for addr at time now, along
// with a set of ops currently inside their grace interval.
func (ft *FuncTable) ActiveOps(addr netip.Addr, now time.Time) (active, grace OpSet) {
	ft.mu.RLock()
	defer ft.mu.RUnlock()
	ow, _, ok := ft.tbl.Lookup(addr)
	if !ok {
		return 0, 0
	}
	for op, w := range ow.wins {
		if w.activeAt(now) {
			active = active.Add(op)
			if w.graceAt(now) {
				grace = grace.Add(op)
			}
		}
	}
	return active, grace
}

// Len returns the number of prefixes with any scheduled op.
func (ft *FuncTable) Len() int {
	ft.mu.RLock()
	defer ft.mu.RUnlock()
	return ft.tbl.Len()
}

// Purge removes every entry whose windows have all expired; returns
// the number of prefixes removed. Controllers run this periodically.
func (ft *FuncTable) Purge(now time.Time) int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	var dead []netip.Prefix
	ft.tbl.Walk(func(p netip.Prefix, ow *opWindows) bool {
		expired := true
		for _, w := range ow.wins {
			if now.Before(w.end) {
				expired = false
				break
			}
		}
		if expired {
			dead = append(dead, p)
		}
		return true
	})
	for _, p := range dead {
		ft.tbl.Delete(p)
	}
	return len(dead)
}

// InTuple is the data structure generated for an inbound packet
// (§V-B): whether to verify and which peer's key to verify with.
type InTuple struct {
	Verify bool
	// EraseOnly is set during grace intervals: erase the mark, skip
	// enforcement.
	EraseOnly bool
	// SrcAS is Pfx2AS(s); the verification key is Key-V(SrcAS).
	SrcAS topology.ASN
	// SrcKnown is false when the source address maps to no AS.
	SrcKnown bool
}

// OutTuple is the data structure generated for an outbound packet
// (§V-B): whether to drop, whether to stamp, and which key to stamp
// with (Key-S(Pfx2AS(d))).
type OutTuple struct {
	Drop  bool
	Stamp bool
	DstAS topology.ASN
}

// Tables bundles the per-router DISCS tables: the Pfx2AS mapping, the
// key tables, and the four function tables.
type Tables struct {
	LocalAS topology.ASN
	Pfx2AS  *lpm.Table[topology.ASN]
	Keys    *KeyTable
	In      map[TableKind]*FuncTable
}

// NewTables creates empty tables for a router of localAS. pfx2as is
// shared — the controller obtains it from RPKI (§V-A) and installs it.
func NewTables(localAS topology.ASN, pfx2as *lpm.Table[topology.ASN]) *Tables {
	return &Tables{
		LocalAS: localAS,
		Pfx2AS:  pfx2as,
		Keys:    NewKeyTable(),
		In: map[TableKind]*FuncTable{
			TableInSrc:  NewFuncTable(TableInSrc),
			TableInDst:  NewFuncTable(TableInDst),
			TableOutSrc: NewFuncTable(TableOutSrc),
			TableOutDst: NewFuncTable(TableOutDst),
		},
	}
}

// srcAS maps an address to its AS via longest-prefix match.
func (t *Tables) srcAS(a netip.Addr) (topology.ASN, bool) {
	asn, _, ok := t.Pfx2AS.Lookup(a)
	return asn, ok
}

// GenInTuple implements the in-tuple generation of §V-B: verify? is
// set iff CSP-verify ∈ In-Src(s) or CDP-verify ∈ In-Dst(d).
func (t *Tables) GenInTuple(src, dst netip.Addr, now time.Time) InTuple {
	srcOps, srcGrace := t.In[TableInSrc].ActiveOps(src, now)
	dstOps, dstGrace := t.In[TableInDst].ActiveOps(dst, now)
	verify := srcOps.Has(OpCSPVerify) || dstOps.Has(OpCDPVerify)
	if !verify {
		return InTuple{}
	}
	erase := false
	if srcOps.Has(OpCSPVerify) && srcGrace.Has(OpCSPVerify) {
		erase = true
	}
	if dstOps.Has(OpCDPVerify) && dstGrace.Has(OpCDPVerify) {
		erase = true
	}
	asn, known := t.srcAS(src)
	return InTuple{Verify: true, EraseOnly: erase, SrcAS: asn, SrcKnown: known}
}

// GenOutTuple implements the out-tuple generation of §V-B:
//
//	drop?  iff Pfx2AS(s) ≠ LocalAS and (SP ∈ Out-Src(s) or DP ∈ Out-Dst(d))
//	stamp? iff (CSP ∈ Out-Src(s) and Key-S(Pfx2AS(d)) ≠ Null) or CDP ∈ Out-Dst(d)
//
// (The paper's prose for drop? reads "Pfx2AS(s) = LocalAS", but Table I
// defines DP-filter as "if src ∉ local, drop" and SP's condition
// src ∈ v implies a non-local source, so the equality is a typo for ≠.)
func (t *Tables) GenOutTuple(src, dst netip.Addr, now time.Time) OutTuple {
	srcOps, _ := t.In[TableOutSrc].ActiveOps(src, now)
	dstOps, _ := t.In[TableOutDst].ActiveOps(dst, now)
	var tup OutTuple
	srcAS, srcKnown := t.srcAS(src)
	local := srcKnown && srcAS == t.LocalAS
	if !local && (srcOps.Has(OpSPFilter) || dstOps.Has(OpDPFilter)) {
		tup.Drop = true
		return tup
	}
	dstAS, _ := t.srcAS(dst)
	tup.DstAS = dstAS
	if (srcOps.Has(OpCSPStamp) && t.Keys.StampKey(dstAS) != nil) || dstOps.Has(OpCDPStamp) {
		tup.Stamp = true
	}
	return tup
}
