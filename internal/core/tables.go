package core

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"discs/internal/cmac"
	"discs/internal/lpm"
	"discs/internal/topology"
)

// window is the activation interval of one operation on one prefix.
// Invocation is always bounded by a duration (§IV-E1); when it expires
// the entry becomes inert and is lazily purged.
type window struct {
	start, end time.Time
	grace      time.Duration // tolerance interval for verify ops
}

// opWin pairs one scheduled operation with its window, the boundaries
// precomputed as Unix nanoseconds: the per-packet activity test is then
// two integer comparisons instead of time.Time arithmetic. Per-prefix
// op sets are tiny (at most the six ops), so a small sorted slice beats
// a map in both lookup cost and snapshot size.
type opWin struct {
	op         Op
	start, end int64
	// graceHead/graceTail bound the strict-enforcement interval: now is
	// in grace when active and (now < graceHead or now >= graceTail).
	graceHead, graceTail int64
}

// funcSnapshot is the immutable lookup state of a FuncTable. Forwarding
// goroutines load it once per packet (or per burst) and read it without
// locks; mutators build a fresh snapshot and publish it atomically.
type funcSnapshot struct {
	tbl *lpm.Table[[]opWin]
	n   int
	// minStart/maxEnd bound the union of all windows (Unix nanos),
	// valid when n > 0. They let idleAt answer "can any op be active
	// now?" without any trie walk, which is what keeps routers with no
	// live invocations out of the LPM path entirely.
	minStart, maxEnd int64
}

var emptyFuncSnapshot = &funcSnapshot{tbl: lpm.New[[]opWin]()}

// idleAt reports that no operation in the snapshot can be active at
// nowN (Unix nanos), so lookups against it are pointless.
func (s *funcSnapshot) idleAt(nowN int64) bool {
	return s.n == 0 || nowN < s.minStart || nowN >= s.maxEnd
}

func (s *funcSnapshot) activeOps(addr netip.Addr, nowN int64) (active, grace OpSet) {
	if s.n == 0 {
		// Empty table: skip even the trie-root walk. Snapshots where
		// only the *other* table of a direction has entries hit this on
		// every packet.
		return 0, 0
	}
	wins, ok := s.tbl.LookupVal(addr)
	if !ok {
		return 0, 0
	}
	for _, w := range wins {
		if nowN >= w.start && nowN < w.end {
			active = active.Add(w.op)
			if nowN < w.graceHead || nowN >= w.graceTail {
				grace = grace.Add(w.op)
			}
		}
	}
	return active, grace
}

// FuncTable is one of the four data-plane function tables (§V-A),
// mapping prefixes (longest match) to scheduled operations. Lookups
// (ActiveOps, the tuple generators) run lock-free against the current
// snapshot from any number of forwarding goroutines; mutations
// (Install/Remove/Purge, driven by the controller) serialize on mu,
// rebuild the snapshot and publish it. Mutations are rare —
// invocations, expiries — so the rebuild cost is irrelevant next to
// the per-packet savings.
type FuncTable struct {
	kind TableKind

	mu      sync.Mutex // serializes mutators; readers never take it
	entries map[netip.Prefix]map[Op]window
	snap    atomic.Pointer[funcSnapshot]
}

// NewFuncTable creates an empty table of the given kind.
func NewFuncTable(kind TableKind) *FuncTable {
	ft := &FuncTable{kind: kind, entries: make(map[netip.Prefix]map[Op]window)}
	ft.snap.Store(emptyFuncSnapshot)
	return ft
}

// Kind returns the table kind.
func (ft *FuncTable) Kind() TableKind { return ft.kind }

// rebuildLocked flattens entries into a fresh snapshot and publishes
// it. Caller holds ft.mu.
func (ft *FuncTable) rebuildLocked() {
	if len(ft.entries) == 0 {
		ft.snap.Store(emptyFuncSnapshot)
		return
	}
	s := &funcSnapshot{tbl: lpm.New[[]opWin]()}
	first := true
	for p, wins := range ft.entries {
		ows := make([]opWin, 0, len(wins))
		for op, w := range wins {
			startN, endN := w.start.UnixNano(), w.end.UnixNano()
			g := int64(w.grace)
			ows = append(ows, opWin{
				op: op, start: startN, end: endN,
				graceHead: startN + g, graceTail: endN - g,
			})
			if first || startN < s.minStart {
				s.minStart = startN
			}
			if first || endN > s.maxEnd {
				s.maxEnd = endN
			}
			first = false
		}
		sort.Slice(ows, func(i, j int) bool { return ows[i].op < ows[j].op })
		// p was canonicalized on Install, so Insert cannot fail.
		s.tbl.Insert(p, ows)
	}
	s.n = s.tbl.Len()
	ft.snap.Store(s)
}

// Install schedules op on prefix for [start, start+duration), with the
// given grace tolerance. Re-installing extends/replaces the window —
// this is how a victim re-invokes with a longer duration (§IV-E1).
func (ft *FuncTable) Install(p netip.Prefix, op Op, start time.Time, duration, grace time.Duration) error {
	if duration <= 0 {
		return fmt.Errorf("core: non-positive duration %v", duration)
	}
	p, err := lpm.Canon(p)
	if err != nil {
		return err
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	wins, ok := ft.entries[p]
	if !ok {
		wins = make(map[Op]window)
		ft.entries[p] = wins
	}
	wins[op] = window{start: start, end: start.Add(duration), grace: grace}
	ft.rebuildLocked()
	return nil
}

// Remove deletes op from prefix immediately (used when quitting a
// protection early).
func (ft *FuncTable) Remove(p netip.Prefix, op Op) {
	p, err := lpm.Canon(p)
	if err != nil {
		return
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	wins, ok := ft.entries[p]
	if !ok {
		return
	}
	if _, had := wins[op]; !had {
		return
	}
	delete(wins, op)
	if len(wins) == 0 {
		delete(ft.entries, p)
	}
	ft.rebuildLocked()
}

// ActiveOps returns the operations active for addr at time now, along
// with a set of ops currently inside their grace interval (the head or
// tail tolerance, during which verification only erases marks, §IV-E1).
func (ft *FuncTable) ActiveOps(addr netip.Addr, now time.Time) (active, grace OpSet) {
	return ft.snap.Load().activeOps(addr, now.UnixNano())
}

// Len returns the number of prefixes with any scheduled op.
func (ft *FuncTable) Len() int { return ft.snap.Load().n }

// Purge removes every entry whose windows have all expired; returns
// the number of prefixes removed. Controllers run this periodically.
func (ft *FuncTable) Purge(now time.Time) int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	removed := 0
	for p, wins := range ft.entries {
		expired := true
		for _, w := range wins {
			if now.Before(w.end) {
				expired = false
				break
			}
		}
		if expired {
			delete(ft.entries, p)
			removed++
		}
	}
	if removed > 0 {
		ft.rebuildLocked()
	}
	return removed
}

// InTuple is the data structure generated for an inbound packet
// (§V-B): whether to verify and which peer's key to verify with.
type InTuple struct {
	Verify bool
	// EraseOnly is set during grace intervals: erase the mark, skip
	// enforcement.
	EraseOnly bool
	// SrcAS is Pfx2AS(s); the verification key is Key-V(SrcAS).
	SrcAS topology.ASN
	// SrcKnown is false when the source address maps to no AS.
	SrcKnown bool
}

// OutTuple is the data structure generated for an outbound packet
// (§V-B): whether to drop, whether to stamp, and the resolved stamping
// key Key-S(Pfx2AS(d)). Key is resolved from the same key snapshot that
// decided Stamp, so the stamping router never re-reads the key table —
// previously the decision and the fetch took separate locks, and a
// teardown between them could stamp with a key the decision had not
// seen.
type OutTuple struct {
	Drop  bool
	Stamp bool
	DstAS topology.ASN
	// Key is non-nil when Stamp is set because of CSP (which requires a
	// peer key); with CDP alone it may be nil — CDP-stamp scheduled but
	// the destination is not a peer — and the packet passes unstamped.
	Key *cmac.CMAC
}

// Tables bundles the per-router DISCS tables: the Pfx2AS mapping, the
// key tables, and the four function tables.
type Tables struct {
	LocalAS topology.ASN
	Pfx2AS  *lpm.Table[topology.ASN]
	Keys    *KeyTable
	In      map[TableKind]*FuncTable

	// Hot-path aliases of the In map, set by NewTables: the forwarding
	// path loads four snapshots per packet and must not pay a map
	// lookup for each.
	inSrc, inDst, outSrc, outDst *FuncTable
}

// NewTables creates empty tables for a router of localAS. pfx2as is
// shared — the controller obtains it from RPKI (§V-A) and installs it.
func NewTables(localAS topology.ASN, pfx2as *lpm.Table[topology.ASN]) *Tables {
	t := &Tables{
		LocalAS: localAS,
		Pfx2AS:  pfx2as,
		Keys:    NewKeyTable(),
		In: map[TableKind]*FuncTable{
			TableInSrc:  NewFuncTable(TableInSrc),
			TableInDst:  NewFuncTable(TableInDst),
			TableOutSrc: NewFuncTable(TableOutSrc),
			TableOutDst: NewFuncTable(TableOutDst),
		},
	}
	t.inSrc = t.In[TableInSrc]
	t.inDst = t.In[TableInDst]
	t.outSrc = t.In[TableOutSrc]
	t.outDst = t.In[TableOutDst]
	return t
}

// outState is one coherent view of everything outbound processing
// needs: both function-table snapshots and the key snapshot. Loading it
// once per packet (or once per burst) replaces the four-plus lock
// acquisitions of the old path.
type outState struct {
	src, dst *funcSnapshot
	keys     *keySnapshot
}

func (t *Tables) loadOut() outState {
	return outState{src: t.outSrc.snap.Load(), dst: t.outDst.snap.Load(), keys: t.Keys.snap.Load()}
}

// inState is the inbound counterpart of outState.
type inState struct {
	src, dst *funcSnapshot
	keys     *keySnapshot
}

func (t *Tables) loadIn() inState {
	return inState{src: t.inSrc.snap.Load(), dst: t.inDst.snap.Load(), keys: t.Keys.snap.Load()}
}

// srcAS maps an address to its AS via longest-prefix match.
func (t *Tables) srcAS(a netip.Addr) (topology.ASN, bool) {
	return t.Pfx2AS.LookupVal(a)
}

// GenInTuple implements the in-tuple generation of §V-B: verify? is
// set iff CSP-verify ∈ In-Src(s) or CDP-verify ∈ In-Dst(d).
func (t *Tables) GenInTuple(src, dst netip.Addr, now time.Time) InTuple {
	st := t.loadIn()
	return t.genInTuple(&st, src, dst, now.UnixNano())
}

func (t *Tables) genInTuple(st *inState, src, dst netip.Addr, nowN int64) InTuple {
	// Idle early return: with no live verify op anywhere, skip the
	// function-table walks and the Pfx2AS lookup.
	if st.src.idleAt(nowN) && st.dst.idleAt(nowN) {
		return InTuple{}
	}
	srcOps, srcGrace := st.src.activeOps(src, nowN)
	dstOps, dstGrace := st.dst.activeOps(dst, nowN)
	verify := srcOps.Has(OpCSPVerify) || dstOps.Has(OpCDPVerify)
	if !verify {
		return InTuple{}
	}
	// §IV-E1: erase-only applies only when every op demanding
	// verification is inside its tolerance interval. One op still in
	// strict enforcement keeps enforcement on, even if another
	// overlapping op is in grace.
	erase := true
	if srcOps.Has(OpCSPVerify) && !srcGrace.Has(OpCSPVerify) {
		erase = false
	}
	if dstOps.Has(OpCDPVerify) && !dstGrace.Has(OpCDPVerify) {
		erase = false
	}
	asn, known := t.srcAS(src)
	return InTuple{Verify: true, EraseOnly: erase, SrcAS: asn, SrcKnown: known}
}

// GenOutTuple implements the out-tuple generation of §V-B:
//
//	drop?  iff Pfx2AS(s) ≠ LocalAS and (SP ∈ Out-Src(s) or DP ∈ Out-Dst(d))
//	stamp? iff (CSP ∈ Out-Src(s) and Key-S(Pfx2AS(d)) ≠ Null) or CDP ∈ Out-Dst(d)
//
// (The paper's prose for drop? reads "Pfx2AS(s) = LocalAS", but Table I
// defines DP-filter as "if src ∉ local, drop" and SP's condition
// src ∈ v implies a non-local source, so the equality is a typo for ≠.)
func (t *Tables) GenOutTuple(src, dst netip.Addr, now time.Time) OutTuple {
	st := t.loadOut()
	return t.genOutTuple(&st, src, dst, now.UnixNano())
}

// pfxMemoSize is the number of direct-mapped slots in the Pfx2AS memo
// (8 KiB-ish of addresses — resident for a pinned worker).
const pfxMemoSize = 512

// memo roles: one last-result slot per function table, so a burst with
// flow locality (repeated sources or one victim destination) resolves
// its per-packet op sets without re-walking the tries.
const (
	memoOutSrc = iota
	memoOutDst
	memoInSrc
	memoInDst
	memoRoles
)

// tupleMemo caches the LPM-heavy pieces of tuple generation for the
// burst path. Two lifetimes coexist:
//
//   - The Pfx2AS memo persists across bursts (the mapping is stable for
//     the life of a Tables); it is tagged with the *lpm.Table it was
//     filled from, so swapping in a new table invalidates it wholesale.
//   - The per-role op-set and stamp-key memos are only coherent against
//     one (snapshot, nowN) pair and are cleared by beginBurst.
//
// A tupleMemo is single-goroutine state; core.BurstPipeline embeds one
// per worker.
type tupleMemo struct {
	pfxTbl  *lpm.Table[topology.ASN]
	pfxAddr [pfxMemoSize]netip.Addr
	pfxASN  [pfxMemoSize]topology.ASN
	pfxOK   [pfxMemoSize]bool
	pfxSet  [pfxMemoSize]bool

	opsAddr   [memoRoles]netip.Addr
	opsOK     [memoRoles]bool
	opsActive [memoRoles]OpSet
	opsGrace  [memoRoles]OpSet

	keyAS  topology.ASN
	keyVal *cmac.CMAC
	keyOK  bool
}

// beginBurst invalidates the snapshot-scoped memos; the Pfx2AS memo
// survives.
func (m *tupleMemo) beginBurst() {
	m.opsOK = [memoRoles]bool{}
	m.keyOK = false
}

// activeOps is funcSnapshot.activeOps behind the role's last-result
// memo.
func (m *tupleMemo) activeOps(role int, s *funcSnapshot, addr netip.Addr, nowN int64) (active, grace OpSet) {
	if s.n == 0 {
		return 0, 0
	}
	if m.opsOK[role] && m.opsAddr[role] == addr {
		return m.opsActive[role], m.opsGrace[role]
	}
	active, grace = s.activeOps(addr, nowN)
	m.opsOK[role], m.opsAddr[role] = true, addr
	m.opsActive[role], m.opsGrace[role] = active, grace
	return active, grace
}

// addrSlot hashes an address to a Pfx2AS memo slot.
func addrSlot(a netip.Addr) uint32 {
	var h uint64
	if a.Is4() {
		b := a.As4()
		h = uint64(binary.BigEndian.Uint32(b[:]))
	} else {
		b := a.As16()
		h = binary.LittleEndian.Uint64(b[0:8]) ^ binary.LittleEndian.Uint64(b[8:16])
	}
	h *= 0x9e3779b97f4a7c15
	return uint32(h>>40) & (pfxMemoSize - 1)
}

// srcASMemo is srcAS behind the direct-mapped memo.
func (t *Tables) srcASMemo(m *tupleMemo, a netip.Addr) (topology.ASN, bool) {
	if m.pfxTbl != t.Pfx2AS {
		m.pfxSet = [pfxMemoSize]bool{}
		m.pfxTbl = t.Pfx2AS
	}
	s := addrSlot(a)
	if m.pfxSet[s] && m.pfxAddr[s] == a {
		return m.pfxASN[s], m.pfxOK[s]
	}
	asn, ok := t.Pfx2AS.LookupVal(a)
	m.pfxSet[s], m.pfxAddr[s] = true, a
	m.pfxASN[s], m.pfxOK[s] = asn, ok
	return asn, ok
}

// genInTupleMemo is genInTuple with memoized lookups. The caller has
// already handled the both-tables-idle early return once per burst.
func (t *Tables) genInTupleMemo(st *inState, m *tupleMemo, src, dst netip.Addr, nowN int64) InTuple {
	srcOps, srcGrace := m.activeOps(memoInSrc, st.src, src, nowN)
	dstOps, dstGrace := m.activeOps(memoInDst, st.dst, dst, nowN)
	verify := srcOps.Has(OpCSPVerify) || dstOps.Has(OpCDPVerify)
	if !verify {
		return InTuple{}
	}
	erase := true
	if srcOps.Has(OpCSPVerify) && !srcGrace.Has(OpCSPVerify) {
		erase = false
	}
	if dstOps.Has(OpCDPVerify) && !dstGrace.Has(OpCDPVerify) {
		erase = false
	}
	asn, known := t.srcASMemo(m, src)
	return InTuple{Verify: true, EraseOnly: erase, SrcAS: asn, SrcKnown: known}
}

// genOutTupleMemo is genOutTuple with memoized lookups; same contract
// as genInTupleMemo.
func (t *Tables) genOutTupleMemo(st *outState, m *tupleMemo, src, dst netip.Addr, nowN int64) OutTuple {
	srcOps, _ := m.activeOps(memoOutSrc, st.src, src, nowN)
	dstOps, _ := m.activeOps(memoOutDst, st.dst, dst, nowN)
	var tup OutTuple
	if srcOps == 0 && dstOps == 0 {
		return tup
	}
	srcAS, srcKnown := t.srcASMemo(m, src)
	local := srcKnown && srcAS == t.LocalAS
	if !local && (srcOps.Has(OpSPFilter) || dstOps.Has(OpDPFilter)) {
		tup.Drop = true
		return tup
	}
	dstAS, _ := t.srcASMemo(m, dst)
	tup.DstAS = dstAS
	if srcOps.Has(OpCSPStamp) || dstOps.Has(OpCDPStamp) {
		key := m.keyVal
		if !m.keyOK || m.keyAS != dstAS {
			key = st.keys.stamp[dstAS]
			m.keyOK, m.keyAS, m.keyVal = true, dstAS, key
		}
		if (srcOps.Has(OpCSPStamp) && key != nil) || dstOps.Has(OpCDPStamp) {
			tup.Stamp, tup.Key = true, key
		}
	}
	return tup
}

func (t *Tables) genOutTuple(st *outState, src, dst netip.Addr, nowN int64) OutTuple {
	// Idle early return: a router with no active out-ops skips both
	// Pfx2AS LPM lookups and all table walks — the common case for the
	// vast majority of DISCS routers the vast majority of the time.
	if st.src.idleAt(nowN) && st.dst.idleAt(nowN) {
		return OutTuple{}
	}
	srcOps, _ := st.src.activeOps(src, nowN)
	dstOps, _ := st.dst.activeOps(dst, nowN)
	var tup OutTuple
	if srcOps == 0 && dstOps == 0 {
		return tup
	}
	srcAS, srcKnown := t.srcAS(src)
	local := srcKnown && srcAS == t.LocalAS
	if !local && (srcOps.Has(OpSPFilter) || dstOps.Has(OpDPFilter)) {
		tup.Drop = true
		return tup
	}
	dstAS, _ := t.srcAS(dst)
	tup.DstAS = dstAS
	if srcOps.Has(OpCSPStamp) || dstOps.Has(OpCDPStamp) {
		key := st.keys.stamp[dstAS]
		if (srcOps.Has(OpCSPStamp) && key != nil) || dstOps.Has(OpCDPStamp) {
			tup.Stamp, tup.Key = true, key
		}
	}
	return tup
}
