package core

import (
	"testing"
	"time"

	"discs/internal/netsim"
	"discs/internal/obs"
	"discs/internal/topology"
)

// TestSystemUnifiedStats checks the observability contract of the
// redesigned API: one registry spans netsim, every controller and every
// router, with scope-prefixed names and a simulated-time stamp.
func TestSystemUnifiedStats(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)

	snap := s.Stats()
	if snap.Get(netsim.MetricDelivered) == 0 {
		t.Fatal("netsim counters missing from the system registry")
	}
	if snap.Get("as1001."+MetricCtrlMsgsSent) == 0 || snap.Get("as1004."+MetricCtrlMsgsSent) == 0 {
		t.Fatalf("controller tallies missing: %v", snap.Names())
	}
	if snap.AtNanos != int64(s.Net.Sim.Now()) {
		t.Fatalf("snapshot stamped %d, sim now %d", snap.AtNanos, int64(s.Net.Sim.Now()))
	}
	if snap.GetGauge("as1001."+MetricCtrlPeersEstablished) != 1 {
		t.Fatalf("peers_established gauge = %d, want 1",
			snap.GetGauge("as1001."+MetricCtrlPeersEstablished))
	}
	// Con-con channel overhead is metered per controller.
	if snap.Get("as1001."+MetricCtrlBytesSealed) == 0 || snap.Get("as1001."+MetricCtrlBytesOpened) == 0 {
		t.Fatal("secure-channel byte meters not wired")
	}

	// The controller's own Stats() view trims the scope prefix.
	ctrl := s.Controllers[1001].Stats()
	if ctrl.Get(MetricCtrlMsgsSent) != snap.Get("as1001."+MetricCtrlMsgsSent) {
		t.Fatal("controller Stats() disagrees with the system snapshot")
	}

	// Data-plane counters aggregate across routers via Sum — the
	// replacement for the removed DataPlaneStats.
	res := s.SendV4(1001, mkV4("172.16.1.10", "172.16.4.10"))
	if !res.Delivered {
		t.Fatalf("delivery failed: %+v", res)
	}
	snap = s.Stats()
	if got := snap.Sum(MetricRouterOutProcessed); got != 1 {
		t.Fatalf("Sum(out_processed) = %d, want 1", got)
	}
	if got := snap.Sum(MetricRouterInProcessed); got != 1 {
		t.Fatalf("Sum(in_processed) = %d, want 1", got)
	}
	if s.Routers[1001].Stats().OutProcessed != snap.Get("as1001."+MetricRouterOutProcessed) {
		t.Fatal("router typed view disagrees with the registry")
	}

	// Control-plane lifecycle left a trace: discovery through key
	// activation for both DASes, stamped in simulated time.
	evs := s.Registry().Tracer().Events()
	want := map[string]bool{
		obs.EvPeerDiscovered: false, obs.EvPeerEstablished: false,
		obs.EvKeyDeploy: false, obs.EvKeyActive: false,
	}
	for _, e := range evs {
		if _, ok := want[e.Kind]; ok {
			want[e.Kind] = true
		}
		if e.At < 0 || e.At > int64(s.Net.Sim.Now()) {
			t.Fatalf("event %q stamped outside simulated time: %d", e.Kind, e.At)
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("no %q event traced (got %d events)", k, len(evs))
		}
	}
}

// TestSystemSampledPacketTracing checks that Config.TraceSampleEvery
// turns on data-plane packet sampling in routers built by Deploy.
func TestSystemSampledPacketTracing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TraceSampleEvery = 1 // sample every packet
	sTr := testInternetWithConfig(t, cfg)
	deployOn(t, sTr, 1001, 1004)
	res := sTr.SendV4(1001, mkV4("172.16.1.10", "172.16.4.10"))
	if !res.Delivered {
		t.Fatalf("delivery failed: %+v", res)
	}
	var samples int
	for _, e := range sTr.Registry().Tracer().Events() {
		if e.Kind == obs.EvPacketSample {
			samples++
			if e.Verdict == "" {
				t.Fatal("packet sample without a verdict")
			}
		}
	}
	if samples < 2 { // outbound at 1001 + inbound at 1004
		t.Fatalf("sampled %d packet events, want >= 2", samples)
	}
}

// testInternetWithConfig is testInternet with a caller-chosen Config.
func testInternetWithConfig(t *testing.T, cfg Config) *System {
	t.Helper()
	s := testInternet(t)
	// Rebuild the system wrapper with the requested config; the BGP
	// network (and its simulator/registry) carries over.
	sys := NewSystem(s.Net, cfg)
	return sys
}

// deployOn deploys and then runs long enough for key activation.
func deployOn(t *testing.T, s *System, asns ...topology.ASN) {
	t.Helper()
	for i, asn := range asns {
		if _, err := s.Deploy(asn, int64(100+i)); err != nil {
			t.Fatalf("Deploy(AS%d): %v", asn, err)
		}
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	// Let heartbeats and key activation finish.
	s.Net.Sim.Run(s.Net.Sim.Now() + 30*time.Second)
}
