package core

import (
	"fmt"
	"sync"

	"discs/internal/cmac"
	"discs/internal/topology"
)

// KeyTable holds the Key-S and Key-V tables of a DAS (§V-A): for each
// peer j, Key-S(j) = key_{i,j} (we stamp packets to j with it) and
// Key-V(j) = key_{j,i} (we verify packets from j with it).
//
// Re-keying (§IV-D) is supported on the verification side by keeping
// the previous key live alongside the new one: a mark is valid if it
// conforms with either. The stamping side switches atomically once the
// peer has confirmed deployment of the new key.
type KeyTable struct {
	mu     sync.RWMutex
	stamp  map[topology.ASN]*cmac.CMAC
	verify map[topology.ASN]*verifyKeys
}

type verifyKeys struct {
	current  *cmac.CMAC
	previous *cmac.CMAC // non-nil only during a rekey window
}

// NewKeyTable creates empty key tables.
func NewKeyTable() *KeyTable {
	return &KeyTable{
		stamp:  make(map[topology.ASN]*cmac.CMAC),
		verify: make(map[topology.ASN]*verifyKeys),
	}
}

// SetStampKey installs (or replaces) the stamping key toward peer.
func (kt *KeyTable) SetStampKey(peer topology.ASN, key []byte) error {
	c, err := cmac.New(key)
	if err != nil {
		return fmt.Errorf("core: stamp key for AS%d: %w", peer, err)
	}
	kt.mu.Lock()
	defer kt.mu.Unlock()
	kt.stamp[peer] = c
	return nil
}

// SetVerifyKey installs a verification key for packets from peer. If a
// key is already present it is retained as the previous key so that
// in-flight packets stamped with it keep verifying until
// DropPreviousVerifyKey is called (§IV-D rekey tolerance).
func (kt *KeyTable) SetVerifyKey(peer topology.ASN, key []byte) error {
	c, err := cmac.New(key)
	if err != nil {
		return fmt.Errorf("core: verify key for AS%d: %w", peer, err)
	}
	kt.mu.Lock()
	defer kt.mu.Unlock()
	if old := kt.verify[peer]; old != nil {
		kt.verify[peer] = &verifyKeys{current: c, previous: old.current}
	} else {
		kt.verify[peer] = &verifyKeys{current: c}
	}
	return nil
}

// DropPreviousVerifyKey ends the rekey window for peer.
func (kt *KeyTable) DropPreviousVerifyKey(peer topology.ASN) {
	kt.mu.Lock()
	defer kt.mu.Unlock()
	if vk := kt.verify[peer]; vk != nil {
		vk.previous = nil
	}
}

// RemovePeer deletes all key state for peer (peer teardown or key
// compromise recovery, §VI-E3).
func (kt *KeyTable) RemovePeer(peer topology.ASN) {
	kt.mu.Lock()
	defer kt.mu.Unlock()
	delete(kt.stamp, peer)
	delete(kt.verify, peer)
}

// StampKey returns the CMAC instance for stamping packets toward peer,
// or nil when peer is not a peer DAS (Key-S(j) = Null in the paper).
func (kt *KeyTable) StampKey(peer topology.ASN) *cmac.CMAC {
	kt.mu.RLock()
	defer kt.mu.RUnlock()
	return kt.stamp[peer]
}

// HasVerifyKey reports whether a verification key exists for peer —
// the "src ∈ peer" predicate of CDP-verify (Table I).
func (kt *KeyTable) HasVerifyKey(peer topology.ASN) bool {
	kt.mu.RLock()
	defer kt.mu.RUnlock()
	return kt.verify[peer] != nil
}

// VerifyMark checks a packet's mark against peer's current key, and
// during a rekey window also against the previous key. It reports
// (valid, keyKnown): keyKnown is false when peer has no verification
// key at all.
func (kt *KeyTable) VerifyMark(peer topology.ASN, carrier MarkCarrier) (valid, keyKnown bool) {
	kt.mu.RLock()
	vk := kt.verify[peer]
	kt.mu.RUnlock()
	if vk == nil {
		return false, false
	}
	if carrier.Verify(vk.current) {
		return true, true
	}
	if vk.previous != nil && carrier.Verify(vk.previous) {
		return true, true
	}
	return false, true
}

// NumPeers returns the number of peers with any key state.
func (kt *KeyTable) NumPeers() int {
	kt.mu.RLock()
	defer kt.mu.RUnlock()
	n := len(kt.verify)
	for p := range kt.stamp {
		if _, ok := kt.verify[p]; !ok {
			n++
		}
	}
	return n
}
