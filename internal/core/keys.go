package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"discs/internal/cmac"
	"discs/internal/topology"
)

// KeyTable holds the Key-S and Key-V tables of a DAS (§V-A): for each
// peer j, Key-S(j) = key_{i,j} (we stamp packets to j with it) and
// Key-V(j) = key_{j,i} (we verify packets from j with it).
//
// Re-keying (§IV-D) is supported on the verification side by keeping
// the previous key live alongside the new one: a mark is valid if it
// conforms with either. The stamping side switches atomically once the
// peer has confirmed deployment of the new key.
//
// The table is copy-on-write: mutators serialize on mu, clone the maps
// and publish a new immutable snapshot; the forwarding path loads the
// snapshot once and reads it without locks. Key churn is a control-plane
// event (rekey intervals are hours), so the clone cost never shows up
// on the data path.
type KeyTable struct {
	mu   sync.Mutex // serializes mutators; readers never take it
	snap atomic.Pointer[keySnapshot]
}

// keySnapshot is an immutable view of both key maps. Neither the maps
// nor the verifyKeys values are ever mutated after publication.
type keySnapshot struct {
	stamp  map[topology.ASN]*cmac.CMAC
	verify map[topology.ASN]*verifyKeys
}

type verifyKeys struct {
	current  *cmac.CMAC
	previous *cmac.CMAC // non-nil only during a rekey window
}

var emptyKeySnapshot = &keySnapshot{
	stamp:  map[topology.ASN]*cmac.CMAC{},
	verify: map[topology.ASN]*verifyKeys{},
}

// NewKeyTable creates empty key tables.
func NewKeyTable() *KeyTable {
	kt := &KeyTable{}
	kt.snap.Store(emptyKeySnapshot)
	return kt
}

// mutate clones the current snapshot, applies fn to the clone and
// publishes it. Caller-side granularity is one published snapshot per
// mutation, which keeps every mutation atomic with respect to readers.
func (kt *KeyTable) mutate(fn func(s *keySnapshot)) {
	kt.mu.Lock()
	defer kt.mu.Unlock()
	old := kt.snap.Load()
	s := &keySnapshot{
		stamp:  make(map[topology.ASN]*cmac.CMAC, len(old.stamp)+1),
		verify: make(map[topology.ASN]*verifyKeys, len(old.verify)+1),
	}
	for p, c := range old.stamp {
		s.stamp[p] = c
	}
	for p, vk := range old.verify {
		s.verify[p] = vk
	}
	fn(s)
	kt.snap.Store(s)
}

// SetStampKey installs (or replaces) the stamping key toward peer.
func (kt *KeyTable) SetStampKey(peer topology.ASN, key []byte) error {
	c, err := cmac.New(key)
	if err != nil {
		return fmt.Errorf("core: stamp key for AS%d: %w", peer, err)
	}
	kt.mutate(func(s *keySnapshot) { s.stamp[peer] = c })
	return nil
}

// SetVerifyKey installs a verification key for packets from peer. If a
// key is already present it is retained as the previous key so that
// in-flight packets stamped with it keep verifying until
// DropPreviousVerifyKey is called (§IV-D rekey tolerance).
func (kt *KeyTable) SetVerifyKey(peer topology.ASN, key []byte) error {
	c, err := cmac.New(key)
	if err != nil {
		return fmt.Errorf("core: verify key for AS%d: %w", peer, err)
	}
	kt.mutate(func(s *keySnapshot) {
		if old := s.verify[peer]; old != nil {
			s.verify[peer] = &verifyKeys{current: c, previous: old.current}
		} else {
			s.verify[peer] = &verifyKeys{current: c}
		}
	})
	return nil
}

// DropPreviousVerifyKey ends the rekey window for peer.
func (kt *KeyTable) DropPreviousVerifyKey(peer topology.ASN) {
	kt.mutate(func(s *keySnapshot) {
		if vk := s.verify[peer]; vk != nil && vk.previous != nil {
			s.verify[peer] = &verifyKeys{current: vk.current}
		}
	})
}

// RemovePeer deletes all key state for peer (peer teardown or key
// compromise recovery, §VI-E3).
func (kt *KeyTable) RemovePeer(peer topology.ASN) {
	kt.mutate(func(s *keySnapshot) {
		delete(s.stamp, peer)
		delete(s.verify, peer)
	})
}

// StampKey returns the CMAC instance for stamping packets toward peer,
// or nil when peer is not a peer DAS (Key-S(j) = Null in the paper).
func (kt *KeyTable) StampKey(peer topology.ASN) *cmac.CMAC {
	return kt.snap.Load().stamp[peer]
}

// HasVerifyKey reports whether a verification key exists for peer —
// the "src ∈ peer" predicate of CDP-verify (Table I).
func (kt *KeyTable) HasVerifyKey(peer topology.ASN) bool {
	return kt.snap.Load().verify[peer] != nil
}

// VerifyMark checks a packet's mark against peer's current key, and
// during a rekey window also against the previous key. It reports
// (valid, keyKnown, macs): keyKnown is false when peer has no
// verification key at all, and macs is the number of CMAC computations
// performed — up to two during a rekey window, zero when the packet
// cannot carry a mark — so callers can account crypto cost faithfully
// (§VI-C2).
func (kt *KeyTable) VerifyMark(peer topology.ASN, carrier MarkCarrier) (valid, keyKnown bool, macs int) {
	return kt.snap.Load().verifyMark(peer, carrier, nil)
}

// verifyMark is the snapshot-level verification used by the forwarding
// path; s, when non-nil, provides reusable CMAC scratch buffers.
func (ks *keySnapshot) verifyMark(peer topology.ASN, carrier MarkCarrier, s *cmac.Scratch) (valid, keyKnown bool, macs int) {
	vk := ks.verify[peer]
	if vk == nil {
		return false, false, 0
	}
	ok, n := verifyOne(carrier, vk.current, s)
	macs += n
	if ok {
		return true, true, macs
	}
	if vk.previous != nil {
		ok, n = verifyOne(carrier, vk.previous, s)
		macs += n
		if ok {
			return true, true, macs
		}
	}
	return false, true, macs
}

func verifyOne(carrier MarkCarrier, c *cmac.CMAC, s *cmac.Scratch) (bool, int) {
	if s != nil {
		if sc, ok := carrier.(scratchCarrier); ok {
			return sc.verifyWith(c, s)
		}
	}
	return carrier.Verify(c)
}

// NumPeers returns the number of peers with any key state.
func (kt *KeyTable) NumPeers() int {
	ks := kt.snap.Load()
	n := len(ks.verify)
	for p := range ks.stamp {
		if _, ok := ks.verify[p]; !ok {
			n++
		}
	}
	return n
}
