package core

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"discs/internal/bgp"
	"discs/internal/netsim"
	"discs/internal/obs"
	"discs/internal/securechan"
	"discs/internal/topology"
	"discs/internal/transport"
)

// Directory maps controller names to their static public keys and
// network locations. It models the out-of-band trust anchor (RPKI plus
// DNS) that lets controllers authenticate each other; the name itself
// travels in the DISCS-Ad.
type Directory struct {
	entries map[string]*DirEntry
}

// DirEntry is one registered controller.
type DirEntry struct {
	Name string
	ASN  topology.ASN
	Pub  []byte
	Node *netsim.Node
}

// NewDirectory creates an empty directory.
func NewDirectory() *Directory { return &Directory{entries: make(map[string]*DirEntry)} }

// Register adds a controller.
func (d *Directory) Register(e *DirEntry) error {
	if _, dup := d.entries[e.Name]; dup {
		return fmt.Errorf("core: duplicate controller name %q", e.Name)
	}
	d.entries[e.Name] = e
	return nil
}

// Lookup returns the entry for name, or nil.
func (d *Directory) Lookup(name string) *DirEntry { return d.entries[name] }

// Entries returns all registered controllers sorted by name, so
// callers iterating the mesh (e.g. the sharded-deploy preconnect) do
// so in a deterministic order.
func (d *Directory) Entries() []*DirEntry {
	out := make([]*DirEntry, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PeerStatus tracks the lifecycle of a DISCS peering (§IV, steps 1-3).
type PeerStatus int

const (
	// PeerDiscovered: we saw the DAS's Ad but have not peered yet.
	PeerDiscovered PeerStatus = iota
	// PeerRequested: we sent a peering request and await the answer.
	PeerRequested
	// PeerEstablished: both sides agreed; key negotiation proceeds.
	PeerEstablished
	// PeerRejected: the remote side declined (or we blacklisted it).
	PeerRejected
	// PeerDead: the peer missed enough heartbeats to be declared down;
	// its keys and table entries are purged and reconnection probes run
	// until it answers again.
	PeerDead
)

func (s PeerStatus) String() string {
	switch s {
	case PeerDiscovered:
		return "discovered"
	case PeerRequested:
		return "requested"
	case PeerEstablished:
		return "established"
	case PeerRejected:
		return "rejected"
	case PeerDead:
		return "dead"
	}
	return "unknown"
}

// peerState is everything a controller tracks per remote DAS.
type peerState struct {
	asn      topology.ASN
	ctrlName string
	status   PeerStatus

	// Secure channel: out is the session we initiated (we send on it);
	// in is the responder side of the peer's session toward us.
	out        *securechan.Session
	in         *securechan.Session
	initiator  *securechan.Initiator
	resumer    *securechan.Resumer // abbreviated handshake in flight
	pendingOut [][]byte            // encoded ControlMsgs awaiting session

	// Key negotiation: serial of the last stamping key we generated and
	// whether the peer acked it.
	stampSerial uint64
	stampKey    []byte
	stampActive bool
	verifySeen  uint64 // serial of the verify key currently deployed

	// Retry machinery.
	retryArmed bool
	retries    int

	// Liveness: lastSeen is the simulated time of the last
	// authenticated message from the peer; missed counts consecutive
	// silent heartbeat intervals.
	lastSeen   netsim.Time
	missed     int
	hbArmed    bool
	probeArmed bool

	// campaignSeen is the serial of the newest defense campaign this
	// peer has been asked to execute; campaignAcked is the newest one
	// it has acknowledged (see Controller.campaigns). A gap between the
	// two marks an invoke in flight, which the retry timer re-drives.
	campaignSeen  uint64
	campaignAcked uint64
	// installed tracks the function-table entries this peer asked us to
	// install, so declaring it dead can withdraw them.
	installed []installedEntry
}

// installedEntry identifies one peer-requested function-table install.
type installedEntry struct {
	table TableKind
	pfx   netip.Prefix
	op    Op
}

// Config tunes controller behaviour.
type Config struct {
	// PeeringDelayMax bounds the random delay before sending a peering
	// request after discovery (§IV-C: prevents request storms).
	PeeringDelayMax time.Duration
	// CtrlLinkDelay is the one-way latency of on-demand con-con links.
	CtrlLinkDelay time.Duration
	// Grace is the verification tolerance interval (§IV-E1).
	Grace time.Duration
	// RekeyOverlap is how long the previous verification key stays
	// valid after a new key is deployed (§IV-D).
	RekeyOverlap time.Duration
	// AlarmThreshold is the number of alarm samples within AlarmWindow
	// that makes the controller declare an attack (§IV-F).
	AlarmThreshold int
	// AlarmWindow bounds the sample-counting window.
	AlarmWindow time.Duration
	// RetryInterval is how long the controller waits for handshake or
	// key-deployment progress before re-driving the exchange. The
	// con-con channel would run over TCP in a real deployment; in the
	// simulator frames can be lost when links flap, so the state
	// machine re-sends idempotent messages.
	RetryInterval time.Duration
	// MaxRetries bounds re-drives per peer so a permanently
	// unreachable controller cannot busy-loop the simulator.
	MaxRetries int
	// RetryJitter adds a uniform random extra delay in [0, RetryJitter]
	// to every retry timer. §IV-C's randomized-peering-delay rationale
	// applies here too: fixed retry intervals synchronize the re-drives
	// of every DAS that lost frames to the same outage, recreating the
	// request storm.
	RetryJitter time.Duration
	// HeartbeatInterval is the keepalive period on established
	// peerings; zero disables liveness detection entirely.
	HeartbeatInterval time.Duration
	// DeadAfterMisses is how many consecutive silent heartbeat
	// intervals declare the peer dead.
	DeadAfterMisses int
	// ReconnectInterval paces re-peering probes toward a dead peer
	// (plus up to 50% jitter); zero disables probing.
	ReconnectInterval time.Duration
	// PurgeInterval paces the periodic PurgeExpired sweep; zero falls
	// back to the old behaviour of purging only on invocations.
	PurgeInterval time.Duration

	// Observability. Registry receives every subsystem's metrics and
	// trace events; nil means each layer creates (or shares the
	// simulator's) registry. TraceCapacity sizes the event ring (0 uses
	// obs.DefaultTraceCapacity); TraceSampleEvery enables sampled
	// data-plane packet tracing on routers built by System.Deploy (0
	// disables it, keeping the forwarding hot path untouched). Seed is
	// mixed into every per-deploy seed so whole-system runs can be
	// re-randomized from one knob without changing call sites.
	Registry         *obs.Registry
	TraceCapacity    int
	TraceSampleEvery int
	Seed             int64
}

// DefaultConfig returns sensible simulation defaults.
func DefaultConfig() Config {
	return Config{
		PeeringDelayMax:   2 * time.Second,
		CtrlLinkDelay:     20 * time.Millisecond,
		Grace:             DefaultGrace,
		RekeyOverlap:      time.Minute,
		AlarmThreshold:    100,
		AlarmWindow:       10 * time.Second,
		RetryInterval:     5 * time.Second,
		MaxRetries:        8,
		RetryJitter:       2 * time.Second,
		HeartbeatInterval: 15 * time.Second,
		DeadAfterMisses:   4,
		ReconnectInterval: 30 * time.Second,
		PurgeInterval:     time.Minute,
	}
}

// Controller is the DISCS controller of one DAS (§IV-B): it discovers
// other DASes from BGP, manages peering and keys, and invokes/accepts
// defense functions. It connects to local border routers "via iBGP
// like a route reflector"; in this implementation it holds direct
// references to them.
type Controller struct {
	AS   topology.ASN
	Name string

	// I/O seam: conn carries outbound frames to peer controllers, rt
	// provides the clock and timers. In simulations they are simConn
	// and nodeRuntime over the netsim node below; in service mode they
	// are a real transport and the wall clock, and sim/node are nil.
	conn FrameSender
	rt   Runtime

	sim     *netsim.Simulator
	node    *netsim.Node
	id      *securechan.Identity
	dir     *Directory
	topo    *topology.Topology // RPKI ownership oracle
	routers []*BorderRouter
	rng     *rand.Rand
	cfg     Config

	// Blacklist holds ASes this controller refuses to peer with
	// (conflict of interest, §IV-C).
	Blacklist map[topology.ASN]bool

	peers map[topology.ASN]*peerState

	// resumeCache holds the con-con resumption secret per peer — the
	// paper's SSL session cache (§VI-C). It models durable state: a
	// real deployment persists it, so it survives Crash, and a
	// restarted controller reconnects via the abbreviated handshake.
	resumeCache map[topology.ASN][16]byte

	// campaigns journals active defense invocations so the controller
	// can re-drive them to a peer that died and came back (or after its
	// own crash, to every re-established peer). Durable like
	// resumeCache.
	campaigns      []campaign
	campaignSerial uint64

	purgeArmed bool

	// OnAttackDetected fires when alarm-mode samples cross the
	// threshold; the argument is the offending source AS (0 if mixed).
	OnAttackDetected func(src topology.ASN)

	alarmTimes []time.Time

	// AutoDefend, when non-nil, closes the alarm loop: the moment the
	// alarm threshold is crossed the controller invokes these functions
	// for its own prefixes (in enforcing mode) in addition to telling
	// everyone to quit alarm mode.
	AutoDefend *AutoDefendPolicy

	// Observability: every tally lives in reg under scope+"ctrl.*"; m
	// caches the handles and trace records control-plane events.
	reg   *obs.Registry
	scope string
	m     ctrlMetrics
	trace *obs.Tracer
}

// Metric names (relative to the controller's scope) for the
// control-plane tallies; a controller scoped "as7." publishes e.g.
// "as7.ctrl.msgs_sent". Exported so consumers of registry snapshots do
// not hard-code strings.
const (
	MetricCtrlMsgsSent             = "ctrl.msgs_sent"
	MetricCtrlMsgsRecv             = "ctrl.msgs_recv"
	MetricCtrlRetries              = "ctrl.retries"
	MetricCtrlInvokesSent          = "ctrl.invokes_sent"
	MetricCtrlInvokesAccepted      = "ctrl.invokes_accepted"
	MetricCtrlInvokesRejected      = "ctrl.invokes_rejected"
	MetricCtrlHandshakesInitiated  = "ctrl.handshakes_initiated"
	MetricCtrlHandshakesResponded  = "ctrl.handshakes_responded"
	MetricCtrlAdsSeen              = "ctrl.ads_seen"
	MetricCtrlPeeringRequestsSent  = "ctrl.peering_requests_sent"
	MetricCtrlPeeringRequestsRecvd = "ctrl.peering_requests_recvd"
	MetricCtrlHeartbeatsSent       = "ctrl.heartbeats_sent"
	MetricCtrlHeartbeatMisses      = "ctrl.heartbeat_misses"
	MetricCtrlPeersDeclaredDead    = "ctrl.peers_declared_dead"
	MetricCtrlResumesInitiated     = "ctrl.resumes_initiated"
	MetricCtrlResumesResponded     = "ctrl.resumes_responded"
	MetricCtrlResumeFallbacks      = "ctrl.resume_fallbacks"
	MetricCtrlCampaignResyncs      = "ctrl.campaign_resyncs"
	MetricCtrlPurged               = "ctrl.purged"
	MetricCtrlCrashes              = "ctrl.crashes"
	MetricCtrlAttacksDetected      = "ctrl.attacks_detected"
	MetricCtrlBytesSealed          = "ctrl.bytes_sealed"
	MetricCtrlBytesOpened          = "ctrl.bytes_opened"
	MetricCtrlPeersEstablished     = "ctrl.peers_established" // gauge
)

// ctrlMetrics holds the controller's pre-resolved registry handles.
type ctrlMetrics struct {
	msgsSent, msgsRecv   *obs.Counter
	retries              *obs.Counter
	invokesSent          *obs.Counter
	invokesAccepted      *obs.Counter
	invokesRejected      *obs.Counter
	handshakesInitiated  *obs.Counter
	handshakesResponded  *obs.Counter
	adsSeen              *obs.Counter
	peeringRequestsSent  *obs.Counter
	peeringRequestsRecvd *obs.Counter
	heartbeatsSent       *obs.Counter
	heartbeatMisses      *obs.Counter
	peersDeclaredDead    *obs.Counter
	resumesInitiated     *obs.Counter
	resumesResponded     *obs.Counter
	resumeFallbacks      *obs.Counter
	campaignResyncs      *obs.Counter
	purged               *obs.Counter
	crashes              *obs.Counter
	attacksDetected      *obs.Counter
	bytesSealed          *obs.Counter
	bytesOpened          *obs.Counter
	peersEstablished     *obs.Gauge
}

func newCtrlMetrics(sc obs.Scope) ctrlMetrics {
	return ctrlMetrics{
		msgsSent:             sc.Counter(MetricCtrlMsgsSent),
		msgsRecv:             sc.Counter(MetricCtrlMsgsRecv),
		retries:              sc.Counter(MetricCtrlRetries),
		invokesSent:          sc.Counter(MetricCtrlInvokesSent),
		invokesAccepted:      sc.Counter(MetricCtrlInvokesAccepted),
		invokesRejected:      sc.Counter(MetricCtrlInvokesRejected),
		handshakesInitiated:  sc.Counter(MetricCtrlHandshakesInitiated),
		handshakesResponded:  sc.Counter(MetricCtrlHandshakesResponded),
		adsSeen:              sc.Counter(MetricCtrlAdsSeen),
		peeringRequestsSent:  sc.Counter(MetricCtrlPeeringRequestsSent),
		peeringRequestsRecvd: sc.Counter(MetricCtrlPeeringRequestsRecvd),
		heartbeatsSent:       sc.Counter(MetricCtrlHeartbeatsSent),
		heartbeatMisses:      sc.Counter(MetricCtrlHeartbeatMisses),
		peersDeclaredDead:    sc.Counter(MetricCtrlPeersDeclaredDead),
		resumesInitiated:     sc.Counter(MetricCtrlResumesInitiated),
		resumesResponded:     sc.Counter(MetricCtrlResumesResponded),
		resumeFallbacks:      sc.Counter(MetricCtrlResumeFallbacks),
		campaignResyncs:      sc.Counter(MetricCtrlCampaignResyncs),
		purged:               sc.Counter(MetricCtrlPurged),
		crashes:              sc.Counter(MetricCtrlCrashes),
		attacksDetected:      sc.Counter(MetricCtrlAttacksDetected),
		bytesSealed:          sc.Counter(MetricCtrlBytesSealed),
		bytesOpened:          sc.Counter(MetricCtrlBytesOpened),
		peersEstablished:     sc.Gauge(MetricCtrlPeersEstablished),
	}
}

// campaign is one journaled Invoke call: the invocations plus the
// wall-clock end of the longest window, after which re-driving it to
// recovered peers is pointless.
type campaign struct {
	serial uint64
	invs   []Invocation
	end    time.Time
}

// ControllerOptions configures a Controller. AS, Name, Dir and Topo
// are always required, plus exactly one I/O binding: Sim+Node for
// simulation mode, or Conn+Runtime for service mode. Everything else
// has a usable zero value. Validation failures are *OptionError.
type ControllerOptions struct {
	AS   topology.ASN
	Name string
	// Sim is the simulator the controller schedules on; Node must be a
	// dedicated netsim node — its handler is taken over. Both are
	// required in simulation mode (Conn nil) and ignored otherwise.
	Sim  *netsim.Simulator
	Node *netsim.Node
	// Conn and Runtime bind the controller to a real transport and the
	// wall clock instead of a simulator (service mode). The host owns
	// serialization: Runtime callbacks and HandleFrame must never run
	// concurrently with each other or with API calls.
	Conn    FrameSender
	Runtime Runtime
	Dir     *Directory
	// Topo is the RPKI ownership oracle.
	Topo *topology.Topology
	// Config tunes protocol behaviour (DefaultConfig when zero values
	// are not intended, pass explicitly).
	Config Config
	// Seed drives all randomized delays and key generation
	// deterministically.
	Seed int64
	// Identity overrides the rng-derived securechan identity; service
	// mode passes a persistent identity so peers can pin the public key
	// out of band. Nil derives one from Seed.
	Identity *securechan.Identity
	// Registry receives the controller's metrics and trace events; nil
	// falls back to Config.Registry, then to the simulator's registry.
	// In service mode one of the first two must be set.
	Registry *obs.Registry
	// Scope prefixes the controller's metric names (e.g. "as7."
	// publishes "as7.ctrl.msgs_sent"). Empty derives "as<N>." from AS.
	Scope string
}

// NewControllerWithOptions creates a controller from an options struct.
func NewControllerWithOptions(o ControllerOptions) (*Controller, error) {
	if o.Name == "" {
		return nil, optErr("ControllerOptions", "Name", "required")
	}
	if o.Dir == nil {
		return nil, optErr("ControllerOptions", "Dir", "required")
	}
	if o.Topo == nil {
		return nil, optErr("ControllerOptions", "Topo", "required")
	}
	if o.Conn == nil {
		if o.Sim == nil {
			return nil, optErr("ControllerOptions", "Sim", "required in simulation mode (Conn nil)")
		}
		if o.Node == nil {
			return nil, optErr("ControllerOptions", "Node", "required in simulation mode (Conn nil)")
		}
		if o.Runtime != nil {
			return nil, optErr("ControllerOptions", "Runtime", "set without Conn: bind both or neither")
		}
	} else if o.Runtime == nil {
		return nil, optErr("ControllerOptions", "Runtime", "required in service mode (Conn set)")
	}
	rng := rand.New(rand.NewSource(o.Seed))
	id := o.Identity
	if id == nil {
		var err error
		id, err = securechan.NewIdentity(o.Name, rng)
		if err != nil {
			return nil, err
		}
	}
	reg := o.Registry
	if reg == nil {
		reg = o.Config.Registry
	}
	if reg == nil && o.Sim != nil {
		reg = o.Sim.Registry()
	}
	if reg == nil {
		return nil, optErr("ControllerOptions", "Registry", "required in service mode (no simulator to fall back to)")
	}
	scope := o.Scope
	if scope == "" {
		scope = fmt.Sprintf("as%d.", o.AS)
	}
	if o.Config.TraceCapacity > 0 {
		reg.SetTraceCapacity(o.Config.TraceCapacity)
	}
	c := &Controller{
		AS: o.AS, Name: o.Name,
		conn: o.Conn, rt: o.Runtime,
		id: id, dir: o.Dir, topo: o.Topo,
		rng: rng, cfg: o.Config,
		Blacklist:   make(map[topology.ASN]bool),
		peers:       make(map[topology.ASN]*peerState),
		resumeCache: make(map[topology.ASN][16]byte),
		reg:         reg,
		scope:       scope,
		m:           newCtrlMetrics(reg.Scope(scope)),
		trace:       reg.Tracer(),
	}
	var dirNode *netsim.Node
	if o.Conn == nil {
		c.sim, c.node = o.Sim, o.Node
		c.conn, c.rt = simConn{c}, nodeRuntime{o.Node}
		o.Node.SetHandler(netsim.HandlerFunc(c.receive))
		dirNode = o.Node
	}
	if err := o.Dir.Register(&DirEntry{Name: o.Name, ASN: o.AS, Pub: id.Public(), Node: dirNode}); err != nil {
		return nil, err
	}
	return c, nil
}

// Stats returns the controller's unified metrics snapshot, with the
// scope prefix trimmed so keys read "ctrl.msgs_sent" regardless of
// which AS the controller serves. It replaces the removed public
// counter fields.
func (c *Controller) Stats() obs.Snapshot {
	return c.reg.SnapshotPrefix(c.scope+"ctrl.", c.scope)
}

// Registry returns the registry the controller publishes into.
func (c *Controller) Registry() *obs.Registry { return c.reg }

// setStatus centralizes peer-status transitions: it maintains the
// peers_established gauge and emits the matching trace event, so every
// lifecycle change is observable from one place.
func (c *Controller) setStatus(p *peerState, s PeerStatus) {
	if p.status == s {
		return
	}
	if p.status == PeerEstablished {
		c.m.peersEstablished.Add(-1)
	}
	p.status = s
	kind := ""
	switch s {
	case PeerDiscovered:
		kind = obs.EvPeerDiscovered
	case PeerRequested:
		kind = obs.EvPeerRequested
	case PeerEstablished:
		kind = obs.EvPeerEstablished
		c.m.peersEstablished.Add(1)
	case PeerRejected:
		kind = obs.EvPeerRejected
	case PeerDead:
		kind = obs.EvPeerDead
	}
	c.trace.Emit(obs.Event{Kind: kind, AS: uint32(c.AS), Peer: uint32(p.asn)})
}

// newPeer creates and registers peer state in Discovered status.
func (c *Controller) newPeer(asn topology.ASN, ctrlName string) *peerState {
	p := &peerState{asn: asn, ctrlName: ctrlName, status: PeerDiscovered}
	c.peers[asn] = p
	c.trace.Emit(obs.Event{Kind: obs.EvPeerDiscovered, AS: uint32(c.AS), Peer: uint32(asn)})
	return p
}

// AttachRouter registers a local border router with the controller.
func (c *Controller) AttachRouter(r *BorderRouter) {
	c.routers = append(c.routers, r)
	r.OnAlarm = c.handleAlarmSample
}

// Routers returns the attached border routers.
func (c *Controller) Routers() []*BorderRouter { return c.routers }

// Ad returns this DAS's DISCS advertisement.
func (c *Controller) Ad() bgp.DISCSAd { return bgp.DISCSAd{Origin: c.AS, Controller: c.Name} }

// PeerStatusOf returns the peering status toward asn.
func (c *Controller) PeerStatusOf(asn topology.ASN) (PeerStatus, bool) {
	p, ok := c.peers[asn]
	if !ok {
		return 0, false
	}
	return p.status, true
}

// Peers returns the ASNs of established peers, sorted.
func (c *Controller) Peers() []topology.ASN {
	var out []topology.ASN
	for asn, p := range c.peers {
		if p.status == PeerEstablished {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// now converts the runtime clock to the wall-clock domain used by the
// data-plane tables. In simulations it reads the node clock, not the
// global simulator clock: under a sharded backend the two can differ
// by up to one lookahead window while an event executes.
func (c *Controller) now() time.Time { return time.Unix(0, 0).UTC().Add(c.rt.Now()) }

// after arms a runtime timer. In simulations timers are node-scoped:
// crashing the controller kills them, as a real process crash would.
// All controller timers go through this (or the background variants)
// so Crash leaves nothing armed.
func (c *Controller) after(d time.Duration, fn func()) { c.rt.After(d, fn) }

// Crash models a controller process crash: the netsim node goes down
// (in-flight frames toward it are discarded, every armed timer dies)
// and all in-memory state is lost — peering state machines, secure
// sessions, alarm counters. What survives is what a real deployment
// persists to disk: the resumption-secret cache (§VI-C's SSL session
// cache) and the campaign journal. Border routers are separate boxes:
// their key and function tables keep enforcing installed windows.
func (c *Controller) Crash() {
	if c.node != nil {
		c.node.Crash()
	}
	c.m.crashes.Inc()
	c.m.peersEstablished.Set(0)
	c.trace.Emit(obs.Event{Kind: obs.EvCtrlCrash, AS: uint32(c.AS)})
	c.peers = make(map[topology.ASN]*peerState)
	c.alarmTimes = nil
	c.purgeArmed = false
}

// Restart brings a crashed controller back up with empty volatile
// state. Rediscovery is driven by the BGP layer replaying known
// DISCS-Ads (System.Restart does that); peerings then re-establish
// over the abbreviated resumption handshake and active campaigns are
// re-driven from the journal.
func (c *Controller) Restart() {
	if c.node != nil {
		c.node.Restart()
	}
	c.trace.Emit(obs.Event{Kind: obs.EvCtrlRestart, AS: uint32(c.AS)})
	if c.anyTableEntries() {
		c.armPurge()
	}
}

func (c *Controller) anyTableEntries() bool {
	for _, r := range c.routers {
		for _, ft := range r.Tables.In {
			if ft.Len() > 0 {
				return true
			}
		}
	}
	return false
}

// HandleAd implements step 1+2 of §IV: upon seeing a DISCS-Ad, check
// the blacklist and schedule a peering request after a random delay.
func (c *Controller) HandleAd(ad bgp.DISCSAd) {
	if ad.Origin == c.AS {
		return
	}
	c.m.adsSeen.Inc()
	if c.Blacklist[ad.Origin] {
		return
	}
	p, exists := c.peers[ad.Origin]
	if exists && p.status != PeerRejected {
		// Controller name change: update the pointer but keep state.
		p.ctrlName = ad.Controller
		// A reappearing Ad is evidence the peer's control plane is
		// alive: refresh the retry budget so a state machine that gave
		// up after MaxRetries gets to try again.
		p.retries = 0
		if p.status == PeerDead {
			// The peer is back from the dead: re-run discovery.
			c.setStatus(p, PeerDiscovered)
			c.after(c.peeringDelay(), func() { c.sendPeeringRequest(p) })
			return
		}
		if c.stalled(p) {
			c.armRetry(p)
		}
		return
	}
	p = c.newPeer(ad.Origin, ad.Controller)
	c.after(c.peeringDelay(), func() { c.sendPeeringRequest(p) })
}

// peeringDelay draws the §IV-C randomized delay before a peering
// request.
func (c *Controller) peeringDelay() time.Duration {
	return time.Duration(c.rng.Int63n(int64(c.cfg.PeeringDelayMax) + 1))
}

func (c *Controller) sendPeeringRequest(p *peerState) {
	if p.status != PeerDiscovered {
		return
	}
	c.setStatus(p, PeerRequested)
	c.m.peeringRequestsSent.Inc()
	c.sendMsg(p, &ControlMsg{Type: MsgPeeringRequest, From: c.AS})
}

// --- transport ----------------------------------------------------------

// linkTo finds or creates the on-demand link to a peer controller
// node; it stands in for the routed Internet path between controllers.
// Under a sharded backend the mesh is preconnected at Deploy time
// (System.Deploy), so the lazy Connect below only runs serially.
func (c *Controller) linkTo(node *netsim.Node) *netsim.Link {
	for _, l := range c.node.Links() {
		if l.Neighbor(c.node) == node {
			return l
		}
	}
	l, err := c.sim.Connect(c.node, node, c.cfg.CtrlLinkDelay)
	if err != nil {
		return nil
	}
	return l
}

// sendMsg encodes and sends a control message to the peer, running the
// secure-channel handshake first if needed. Messages queue during the
// handshake, and a retry timer re-drives the exchange if it stalls
// (e.g. frames lost to a flapping link).
func (c *Controller) sendMsg(p *peerState, m *ControlMsg) {
	data, err := m.Encode()
	if err != nil {
		return
	}
	c.sendEncoded(p, data)
	c.armRetry(p)
}

func (c *Controller) sendEncoded(p *peerState, data []byte) {
	if p.out != nil {
		c.sendRecord(p, p.out.Seal(data))
		return
	}
	p.pendingOut = append(p.pendingOut, data)
	c.startHandshake(p, false)
}

// startHandshake opens the con-con transport toward p unless one is
// already in flight. With a cached resumption secret the abbreviated
// exchange is tried first (§VI-C); full forces the asymmetric
// handshake (used after the peer rejected a resumption).
func (c *Controller) startHandshake(p *peerState, full bool) {
	if p.initiator != nil || p.resumer != nil {
		return // handshake already in flight
	}
	if !full {
		if secret, ok := c.resumeCache[p.asn]; ok {
			res, err := securechan.NewResumer(secret, c.rng)
			if err == nil {
				p.resumer = res
				c.m.resumesInitiated.Inc()
				c.trace.Emit(obs.Event{Kind: obs.EvHandshakeResume, AS: uint32(c.AS), Peer: uint32(p.asn)})
				c.sendFrame(p, frameResumeHello, res.Hello())
				return
			}
		}
	}
	ent := c.dir.Lookup(p.ctrlName)
	if ent == nil {
		return // controller unknown; Ad will refresh the name
	}
	ini, err := securechan.NewInitiator(c.id, ent.Pub, c.rng)
	if err != nil {
		return
	}
	p.initiator = ini
	c.m.handshakesInitiated.Inc()
	c.trace.Emit(obs.Event{Kind: obs.EvHandshakeFull, AS: uint32(c.AS), Peer: uint32(p.asn)})
	c.sendFrame(p, frameHello, ini.Hello())
}

// stalled reports whether the peer state machine is waiting on remote
// progress that a lost frame could block forever.
func (c *Controller) stalled(p *peerState) bool {
	if p.status == PeerRejected || p.status == PeerDead {
		// Dead peers are the reconnect prober's job, not the retry
		// timer's.
		return false
	}
	if len(p.pendingOut) > 0 && p.out == nil {
		return true // handshake in flight (or dead)
	}
	if p.status == PeerRequested {
		return true // request unanswered
	}
	if p.status == PeerEstablished && p.stampKey != nil && !p.stampActive {
		return true // key deploy unacked
	}
	if p.status == PeerEstablished && c.unackedCampaign(p) {
		return true // invoke unacked
	}
	return false
}

// unackedCampaign reports whether a still-live campaign was sent to p
// but never acknowledged (the invoke or its ack was lost).
func (c *Controller) unackedCampaign(p *peerState) bool {
	if p.campaignAcked >= p.campaignSeen {
		return false
	}
	now := c.now()
	for _, cp := range c.campaigns {
		if cp.serial > p.campaignAcked && cp.serial <= p.campaignSeen && now.Before(cp.end) {
			return true
		}
	}
	return false
}

func (c *Controller) armRetry(p *peerState) {
	if p.retryArmed || c.cfg.RetryInterval <= 0 || p.retries >= c.cfg.MaxRetries {
		return
	}
	p.retryArmed = true
	c.after(c.retryDelay(), func() { c.retry(p) })
}

// retryDelay is RetryInterval plus a seeded uniform jitter in
// [0, RetryJitter], desynchronizing the retries of DASes that lost
// frames to the same outage (the §IV-C request-storm argument).
func (c *Controller) retryDelay() time.Duration {
	d := c.cfg.RetryInterval
	if c.cfg.RetryJitter > 0 {
		d += time.Duration(c.rng.Int63n(int64(c.cfg.RetryJitter) + 1))
	}
	return d
}

// retry re-drives a stalled exchange: it abandons any half-open
// session, restarts the handshake, and re-sends the idempotent
// state-machine messages (peering request / key deploy).
func (c *Controller) retry(p *peerState) {
	p.retryArmed = false
	if !c.stalled(p) {
		p.retries = 0
		return
	}
	p.retries++
	c.m.retries.Inc()
	// Restart transport: a fresh handshake replaces any wedged session.
	p.initiator = nil
	p.resumer = nil
	p.out = nil
	p.pendingOut = nil
	if p.status == PeerRequested {
		c.sendEncoded(p, mustEncode(&ControlMsg{Type: MsgPeeringRequest, From: c.AS}))
	}
	if p.status == PeerEstablished && p.stampKey != nil && !p.stampActive {
		c.sendEncoded(p, mustEncode(&ControlMsg{
			Type: MsgKeyDeploy, From: c.AS, Key: p.stampKey, Serial: p.stampSerial,
		}))
	}
	if p.status == PeerEstablished && c.unackedCampaign(p) {
		now := c.now()
		for _, cp := range c.campaigns {
			if cp.serial > p.campaignAcked && cp.serial <= p.campaignSeen && now.Before(cp.end) {
				c.sendEncoded(p, mustEncode(&ControlMsg{
					Type: MsgInvoke, From: c.AS, Invocations: cp.invs, Serial: cp.serial,
				}))
			}
		}
	}
	c.armRetry(p)
}

func mustEncode(m *ControlMsg) []byte {
	b, err := m.Encode()
	if err != nil {
		panic("core: control message encode failed: " + err.Error())
	}
	return b
}

// sendFrame pushes one control frame toward p over the I/O seam.
// Delivery is best-effort (false from Send mirrors a frame dropped on
// a netsim link); the retry machinery owns recovery.
func (c *Controller) sendFrame(p *peerState, kind frameKind, data []byte) {
	if c.conn.Send(p.ctrlName, transport.Frame{Kind: uint8(kind), From: c.Name, Data: data}) {
		c.m.msgsSent.Inc()
	}
}

func (c *Controller) sendRecord(p *peerState, record []byte) {
	c.sendFrame(p, frameRecord, record)
}

// receive dispatches incoming controller frames in simulation mode; it
// is the netsim node handler. Service mode enters the same dispatch
// through HandleFrame.
func (c *Controller) receive(_ *netsim.Node, _ *netsim.Link, msg netsim.Message) {
	f, ok := msg.(*ctrlFrame)
	if !ok {
		return
	}
	c.handleFrame(f.Kind, f.From, f.Data)
}

// handleFrame is the transport-independent inbound dispatch: one frame
// from the named peer controller, already deframed by the host.
func (c *Controller) handleFrame(kind frameKind, from string, data []byte) {
	c.m.msgsRecv.Inc()
	ent := c.dir.Lookup(from)
	if ent == nil {
		return
	}
	p := c.peers[ent.ASN]
	switch kind {
	case frameHello:
		// Respond even if we have not yet decided to peer: transport
		// security is independent of the peering policy decision.
		if p == nil {
			p = c.newPeer(ent.ASN, from)
		}
		reply, sess, err := securechan.Respond(c.id, ent.Pub, data, c.rng)
		if err != nil {
			return
		}
		c.m.handshakesResponded.Inc()
		sess.SetMeter(c.m.bytesSealed, c.m.bytesOpened)
		p.in = sess
		// Cache the resumption secret from full handshakes only: both
		// ends of one handshake cache the same value, so later
		// abbreviated exchanges agree (§VI-C session cache).
		c.resumeCache[ent.ASN] = sess.ResumptionSecret()
		c.sendFrame(p, frameReply, reply)
	case frameReply:
		if p == nil || p.initiator == nil {
			return
		}
		sess, err := p.initiator.Finish(data)
		if err != nil {
			// A stale or forged reply (e.g. for a handshake we already
			// abandoned): keep waiting for the right one.
			return
		}
		p.initiator = nil
		sess.SetMeter(c.m.bytesSealed, c.m.bytesOpened)
		p.out = sess
		c.resumeCache[p.asn] = sess.ResumptionSecret()
		for _, d := range p.pendingOut {
			c.sendRecord(p, p.out.Seal(d))
		}
		p.pendingOut = nil
	case frameResumeHello:
		if p == nil {
			p = c.newPeer(ent.ASN, from)
		}
		secret, ok := c.resumeCache[ent.ASN]
		if !ok {
			// Secret stale (lost with a crash that predates the cache
			// entry, or never established): make the peer fall back.
			c.sendFrame(p, frameResumeReject, nil)
			return
		}
		reply, sess, err := securechan.ResumeRespond(secret, data, c.rng)
		if err != nil {
			c.sendFrame(p, frameResumeReject, nil)
			return
		}
		c.m.resumesResponded.Inc()
		sess.SetMeter(c.m.bytesSealed, c.m.bytesOpened)
		p.in = sess
		c.sendFrame(p, frameResumeReply, reply)
	case frameResumeReply:
		if p == nil || p.resumer == nil {
			return
		}
		sess, err := p.resumer.Finish(data)
		if err != nil {
			return // corrupted or forged; retry machinery re-drives
		}
		p.resumer = nil
		sess.SetMeter(c.m.bytesSealed, c.m.bytesOpened)
		p.out = sess
		for _, d := range p.pendingOut {
			c.sendRecord(p, p.out.Seal(d))
		}
		p.pendingOut = nil
	case frameResumeReject:
		if p == nil || p.resumer == nil {
			return
		}
		// The peer no longer holds the secret: drop ours and run the
		// full handshake, which refreshes the cache on both ends.
		p.resumer = nil
		delete(c.resumeCache, p.asn)
		c.m.resumeFallbacks.Inc()
		c.trace.Emit(obs.Event{Kind: obs.EvResumeFallback, AS: uint32(c.AS), Peer: uint32(p.asn)})
		if len(p.pendingOut) > 0 {
			c.startHandshake(p, true)
		}
	case frameRecord:
		if p == nil || p.in == nil {
			return
		}
		plain, err := p.in.Open(data)
		if err != nil {
			return
		}
		m, err := DecodeControlMsg(plain)
		if err != nil {
			return
		}
		c.handleMsg(p, m)
	}
}

// --- control-plane state machine -----------------------------------------

func (c *Controller) handleMsg(p *peerState, m *ControlMsg) {
	if m.From != p.asn {
		return // sender identity must match the authenticated channel
	}
	// Any authenticated message proves the peer alive.
	c.markAlive(p)
	switch m.Type {
	case MsgPeeringRequest:
		c.m.peeringRequestsRecvd.Inc()
		if c.Blacklist[p.asn] {
			c.setStatus(p, PeerRejected)
			c.sendMsg(p, &ControlMsg{Type: MsgPeeringReject, From: c.AS, Reason: "blacklisted"})
			return
		}
		if p.status == PeerEstablished {
			// A peer we consider established does not re-request peering
			// unless it lost its state: it declared us dead (purging its
			// inbound session and our keys) or crashed and restarted.
			// Our outbound session and deployed key are stale on its side
			// — keeping them would livelock: we would keep sending
			// records it cannot decrypt while happily receiving its.
			// Reset the transport and re-drive keys and campaigns.
			p.out, p.initiator, p.resumer = nil, nil, nil
			p.pendingOut = nil
			p.stampActive = false
			p.campaignSeen, p.campaignAcked = 0, 0
		}
		c.setStatus(p, PeerEstablished)
		c.sendMsg(p, &ControlMsg{Type: MsgPeeringAccept, From: c.AS})
		c.armHeartbeat(p)
		c.negotiateKey(p)
	case MsgPeeringAccept:
		if p.status == PeerRequested {
			c.setStatus(p, PeerEstablished)
			c.armHeartbeat(p)
			c.negotiateKey(p)
		}
	case MsgPeeringReject:
		c.setStatus(p, PeerRejected)
	case MsgKeyDeploy:
		c.handleKeyDeploy(p, m)
	case MsgKeyAck:
		c.handleKeyAck(p, m)
	case MsgInvoke:
		c.handleInvoke(p, m)
	case MsgInvokeAck:
		c.m.invokesAccepted.Inc()
		c.trace.Emit(obs.Event{Kind: obs.EvCampaignAck, AS: uint32(c.AS), Peer: uint32(p.asn), Serial: m.Serial})
		if m.Serial > p.campaignAcked {
			p.campaignAcked = m.Serial
		}
	case MsgInvokeReject:
		c.m.invokesRejected.Inc()
		// A rejection settles the exchange too: retrying a request the
		// peer refuses would loop forever.
		if m.Serial > p.campaignAcked {
			p.campaignAcked = m.Serial
		}
	case MsgQuitAlarm:
		if p.status == PeerEstablished {
			for _, r := range c.routers {
				r.SetAlarmMode(false)
			}
		}
	case MsgHeartbeat:
		if p.status == PeerEstablished {
			// Answer outside sendMsg: keepalives must not arm retry
			// timers (liveness has its own clock).
			c.sendEncoded(p, mustEncode(&ControlMsg{Type: MsgHeartbeatAck, From: c.AS}))
		}
	case MsgHeartbeatAck:
		// markAlive above already did the work.
	}
}

// --- liveness (heartbeats, dead-peer detection, recovery) -----------------

func (c *Controller) markAlive(p *peerState) {
	p.lastSeen = c.rt.Now() // node clock: exact under sharded backends
	p.missed = 0
}

// armHeartbeat starts the keepalive loop toward an established peer.
// The loop runs on background events: it keeps a live deployment
// ticking without preventing run-to-quiescence tests from settling.
func (c *Controller) armHeartbeat(p *peerState) {
	if p.hbArmed || c.cfg.HeartbeatInterval <= 0 {
		return
	}
	p.hbArmed = true
	c.markAlive(p)
	c.rt.AfterBackground(c.cfg.HeartbeatInterval, func() { c.heartbeatTick(p) })
}

func (c *Controller) heartbeatTick(p *peerState) {
	if p.status != PeerEstablished {
		p.hbArmed = false
		return
	}
	if c.rt.Now()-p.lastSeen >= c.cfg.HeartbeatInterval {
		p.missed++
		c.m.heartbeatMisses.Inc()
		c.trace.Emit(obs.Event{Kind: obs.EvHeartbeatMiss, AS: uint32(c.AS), Peer: uint32(p.asn)})
		if c.cfg.DeadAfterMisses > 0 && p.missed >= c.cfg.DeadAfterMisses {
			p.hbArmed = false
			c.declarePeerDead(p)
			return
		}
	}
	c.m.heartbeatsSent.Inc()
	c.sendEncoded(p, mustEncode(&ControlMsg{Type: MsgHeartbeat, From: c.AS}))
	if p.out == nil {
		// The keepalive queued behind a handshake. If that handshake's
		// frames were lost nothing else may be scheduled to re-drive it —
		// arm the retry timer so the channel cannot wedge silently until
		// the peer declares us dead.
		c.armRetry(p)
	}
	c.rt.AfterBackground(c.cfg.HeartbeatInterval, func() { c.heartbeatTick(p) })
}

// declarePeerDead executes graceful degradation: the peer's key state
// is purged from every router (stamping toward a dead DAS buys nothing
// and verification against it would drop legitimate unstamped
// traffic), the function-table entries it requested are withdrawn to
// free table slots, and the secure sessions are torn down. A
// reconnection prober then takes over from the heartbeat loop.
func (c *Controller) declarePeerDead(p *peerState) {
	c.setStatus(p, PeerDead)
	c.m.peersDeclaredDead.Inc()
	for _, r := range c.routers {
		r.Tables.Keys.RemovePeer(p.asn)
	}
	for _, e := range p.installed {
		for _, r := range c.routers {
			r.Tables.In[e.table].Remove(e.pfx, e.op)
		}
	}
	p.installed = nil
	p.out, p.in = nil, nil
	p.initiator, p.resumer = nil, nil
	p.pendingOut = nil
	p.stampKey = nil
	p.stampActive = false
	p.verifySeen = 0
	p.retries = 0
	p.missed = 0
	p.campaignSeen = 0
	p.campaignAcked = 0
	c.armReconnect(p)
}

// armReconnect schedules a re-peering probe toward a dead (or stuck)
// peer, paced by ReconnectInterval plus up to 50% jitter.
func (c *Controller) armReconnect(p *peerState) {
	if p.probeArmed || c.cfg.ReconnectInterval <= 0 {
		return
	}
	p.probeArmed = true
	d := c.cfg.ReconnectInterval +
		time.Duration(c.rng.Int63n(int64(c.cfg.ReconnectInterval)/2+1))
	c.rt.AfterBackground(d, func() { c.reconnectTick(p) })
}

// reconnectTick probes a dead peer: the peering request doubles as the
// liveness probe — a restarted peer answers it and the normal
// establishment path (resumption handshake, key negotiation, campaign
// resync) takes it from there. Each probe gets a fresh retry budget.
func (c *Controller) reconnectTick(p *peerState) {
	p.probeArmed = false
	switch p.status {
	case PeerEstablished, PeerRejected:
		return // recovered (or a policy decision ended the peering)
	case PeerDead:
		c.setStatus(p, PeerDiscovered)
		p.retries = 0
		c.sendPeeringRequest(p)
	case PeerDiscovered:
		p.retries = 0
		c.sendPeeringRequest(p)
	case PeerRequested:
		p.retries = 0
		c.sendEncoded(p, mustEncode(&ControlMsg{Type: MsgPeeringRequest, From: c.AS}))
	}
	c.armReconnect(p)
}

// --- key negotiation (§IV-D) ---------------------------------------------

// negotiateKey generates key_{c.AS, peer} and deploys it to the peer.
func (c *Controller) negotiateKey(p *peerState) {
	key := make([]byte, 16)
	c.rng.Read(key)
	p.stampSerial++
	p.stampKey = key
	p.stampActive = false
	c.sendMsg(p, &ControlMsg{Type: MsgKeyDeploy, From: c.AS, Key: key, Serial: p.stampSerial})
}

// Rekey starts a key rotation toward peer (§IV-D): the new key is sent
// first and only used for stamping once the peer acks deployment.
func (c *Controller) Rekey(peer topology.ASN) error {
	p := c.peers[peer]
	if p == nil || p.status != PeerEstablished {
		return fmt.Errorf("core: AS%d is not an established peer", peer)
	}
	c.negotiateKey(p)
	return nil
}

// RekeyAll rotates keys toward every established peer; used after a
// suspected key leakage (§VI-E3).
func (c *Controller) RekeyAll() {
	for _, p := range c.establishedPeers() {
		c.negotiateKey(p)
	}
}

// establishedPeers returns established peer states in ascending ASN
// order. Every fan-out walks peers through this: map iteration order
// would otherwise leak into send order, RNG draw order and therefore
// the whole fault schedule, breaking the determinism contract.
func (c *Controller) establishedPeers() []*peerState {
	var out []*peerState
	for _, p := range c.peers {
		if p.status == PeerEstablished {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].asn < out[j].asn })
	return out
}

func (c *Controller) handleKeyDeploy(p *peerState, m *ControlMsg) {
	if p.status != PeerEstablished {
		return
	}
	if m.Serial == p.verifySeen {
		// Duplicate (retransmission): the earlier ack was lost, re-ack.
		c.sendMsg(p, &ControlMsg{Type: MsgKeyAck, From: c.AS, Serial: m.Serial})
		return
	}
	// Any other serial — higher or lower — is a genuine new deploy: a
	// crashed controller restarts its serial counter at 1, and the
	// con-con channel is replay-protected, so a regressed serial cannot
	// be a replayed old deploy.
	p.verifySeen = m.Serial
	c.trace.Emit(obs.Event{Kind: obs.EvKeyDeploy, AS: uint32(c.AS), Peer: uint32(p.asn), Serial: m.Serial})
	// Deploy to all local border routers as the verification key for
	// packets from this peer. The previous key stays valid for the
	// rekey overlap window.
	for _, r := range c.routers {
		if err := r.Tables.Keys.SetVerifyKey(p.asn, m.Key); err != nil {
			return
		}
	}
	peer := p.asn
	c.after(c.cfg.RekeyOverlap, func() {
		for _, r := range c.routers {
			r.Tables.Keys.DropPreviousVerifyKey(peer)
		}
	})
	c.sendMsg(p, &ControlMsg{Type: MsgKeyAck, From: c.AS, Serial: m.Serial})
}

func (c *Controller) handleKeyAck(p *peerState, m *ControlMsg) {
	if m.Serial != p.stampSerial || p.stampKey == nil {
		return
	}
	// Peer finished deploying: switch stamping to the new key.
	for _, r := range c.routers {
		r.Tables.Keys.SetStampKey(p.asn, p.stampKey)
	}
	p.stampActive = true
	p.retries = 0
	c.trace.Emit(obs.Event{Kind: obs.EvKeyActive, AS: uint32(c.AS), Peer: uint32(p.asn), Serial: m.Serial})
	// Keys active means the peer can enforce: re-drive any campaign it
	// has not seen (it just restarted, or we did).
	c.resyncCampaigns(p)
}

// resyncCampaigns sends the still-active journaled invocations this
// peer has not executed yet — the tail end of crash recovery: after
// re-peering and key deployment the interrupted defense campaign
// resumes without operator action.
func (c *Controller) resyncCampaigns(p *peerState) {
	now := c.now()
	for i := range c.campaigns {
		cp := &c.campaigns[i]
		if cp.serial <= p.campaignAcked || !now.Before(cp.end) {
			continue
		}
		c.sendMsg(p, &ControlMsg{Type: MsgInvoke, From: c.AS, Invocations: cp.invs, Serial: cp.serial})
		p.campaignSeen = cp.serial
		c.m.campaignResyncs.Inc()
		c.trace.Emit(obs.Event{Kind: obs.EvCampaignResync, AS: uint32(c.AS), Peer: uint32(p.asn), Serial: cp.serial})
	}
}

// KeysReadyWith reports whether stamping toward peer is active (the
// peer deployed our key) — useful for tests and readiness checks.
func (c *Controller) KeysReadyWith(peer topology.ASN) bool {
	p := c.peers[peer]
	return p != nil && p.stampActive
}

// --- invocation (§IV-E) ----------------------------------------------------

// PurgeExpired removes fully expired function-table entries from all
// local routers (§IV-E1 windows are lazy-expiring; this reclaims the
// table slots). It returns the number of prefixes removed. Controllers
// run it opportunistically on every invocation and periodically from
// the event loop (armPurge).
func (c *Controller) PurgeExpired() int {
	now := c.now()
	total := 0
	for _, r := range c.routers {
		for _, ft := range r.Tables.In {
			total += ft.Purge(now)
		}
	}
	return total
}

// armPurge schedules the periodic purge sweep. It runs on background
// events (housekeeping must not keep the simulator from settling) and
// re-arms itself only while any function table still has entries, so
// an idle controller stops sweeping.
func (c *Controller) armPurge() {
	if c.purgeArmed || c.cfg.PurgeInterval <= 0 {
		return
	}
	c.purgeArmed = true
	c.rt.AfterBackground(c.cfg.PurgeInterval, func() { c.purgeTick() })
}

func (c *Controller) purgeTick() {
	c.purgeArmed = false
	c.m.purged.Add(uint64(c.PurgeExpired()))
	if c.anyTableEntries() {
		c.armPurge()
	}
}

// Invoke requests protection: the victim DAS validates that it owns
// the prefixes, installs its own operations, and asks every
// established peer to execute the peer-side operations. It returns the
// number of peers asked.
func (c *Controller) Invoke(invs ...Invocation) (int, error) {
	c.PurgeExpired()
	for _, inv := range invs {
		if err := inv.Validate(); err != nil {
			return 0, err
		}
		for _, pfx := range inv.Prefixes {
			owner, ok := c.topo.OwnerOfPrefix(pfx)
			if !ok || owner != c.AS {
				return 0, fmt.Errorf("core: prefix %v not owned by AS%d", pfx, c.AS)
			}
		}
	}
	now := c.now()
	// Victim-side operations.
	for _, inv := range invs {
		for table, ops := range VictimOps(inv.Function) {
			for _, pfx := range inv.Prefixes {
				for _, op := range []Op{OpDPFilter, OpCDPStamp, OpCDPVerify, OpSPFilter, OpCSPStamp, OpCSPVerify} {
					if !ops.Has(op) {
						continue
					}
					for _, r := range c.routers {
						if err := r.Tables.In[table].Install(pfx, op, now, inv.Duration, c.cfg.Grace); err != nil {
							return 0, err
						}
					}
				}
			}
		}
	}
	// Journal the campaign so peers that die and recover mid-window (or
	// re-peer after our own crash) get it re-driven.
	end := now
	for _, inv := range invs {
		if e := now.Add(inv.Duration + c.cfg.Grace); e.After(end) {
			end = e
		}
	}
	c.campaignSerial++
	c.campaigns = append(c.campaigns, campaign{serial: c.campaignSerial, invs: invs, end: end})
	c.pruneCampaigns(now)
	// Peer-side request.
	n := 0
	msg := &ControlMsg{Type: MsgInvoke, From: c.AS, Invocations: invs, Serial: c.campaignSerial}
	for _, p := range c.establishedPeers() {
		c.sendMsg(p, msg)
		p.campaignSeen = c.campaignSerial
		n++
	}
	c.m.invokesSent.Inc()
	c.trace.Emit(obs.Event{Kind: obs.EvCampaignInvoke, AS: uint32(c.AS), Serial: c.campaignSerial})
	c.armPurge()
	return n, nil
}

// pruneCampaigns drops journal entries whose windows have fully ended.
func (c *Controller) pruneCampaigns(now time.Time) {
	kept := c.campaigns[:0]
	for _, cp := range c.campaigns {
		if now.Before(cp.end) {
			kept = append(kept, cp)
		}
	}
	c.campaigns = kept
}

// handleInvoke executes the peer side of an invocation after the RPKI
// ownership check (§IV-E3: "peer DASes check the ownership of the
// prefixes, and accept the request only if they belong to the victim").
func (c *Controller) handleInvoke(p *peerState, m *ControlMsg) {
	c.PurgeExpired()
	if p.status != PeerEstablished {
		// Serial 0: a not-yet-a-peer reject is transient — it must not
		// settle the campaign at the sender, which re-drives it once the
		// peering establishes.
		c.sendMsg(p, &ControlMsg{Type: MsgInvokeReject, From: c.AS, Reason: "not a peer"})
		return
	}
	for _, inv := range m.Invocations {
		if err := inv.Validate(); err != nil {
			c.sendMsg(p, &ControlMsg{Type: MsgInvokeReject, From: c.AS, Serial: m.Serial, Reason: err.Error()})
			return
		}
		for _, pfx := range inv.Prefixes {
			owner, ok := c.topo.OwnerOfPrefix(pfx)
			if !ok || owner != m.From {
				c.sendMsg(p, &ControlMsg{Type: MsgInvokeReject, From: c.AS, Serial: m.Serial,
					Reason: fmt.Sprintf("prefix %v not owned by AS%d", pfx, m.From)})
				return
			}
		}
	}
	now := c.now()
	for _, inv := range m.Invocations {
		for table, ops := range PeerOps(inv.Function) {
			for _, pfx := range inv.Prefixes {
				for _, op := range []Op{OpDPFilter, OpCDPStamp, OpCDPVerify, OpSPFilter, OpCSPStamp, OpCSPVerify} {
					if !ops.Has(op) {
						continue
					}
					for _, r := range c.routers {
						r.Tables.In[table].Install(pfx, op, now, inv.Duration, c.cfg.Grace)
					}
					c.recordInstall(p, table, pfx, op)
				}
			}
		}
		if inv.Alarm {
			for _, r := range c.routers {
				r.SetAlarmMode(true)
			}
		}
	}
	c.armPurge()
	c.trace.Emit(obs.Event{Kind: obs.EvCampaignAccept, AS: uint32(c.AS), Peer: uint32(p.asn), Serial: m.Serial})
	c.sendMsg(p, &ControlMsg{Type: MsgInvokeAck, From: c.AS, Serial: m.Serial})
}

// recordInstall remembers a peer-requested install so declarePeerDead
// can withdraw it. Duplicates (retransmitted invokes) are collapsed.
func (c *Controller) recordInstall(p *peerState, table TableKind, pfx netip.Prefix, op Op) {
	for _, e := range p.installed {
		if e.table == table && e.pfx == pfx && e.op == op {
			return
		}
	}
	p.installed = append(p.installed, installedEntry{table: table, pfx: pfx, op: op})
}

// --- alarm mode (§IV-F) -----------------------------------------------------

// AutoDefendPolicy describes the automatic reaction to a detected
// attack: which functions to invoke and for how long. This is the
// "invoke the DISCS functions automatically" path of §IV-E1 for DASes
// that use alarm mode as their detection module.
//
// When Escalate is set, the controller re-arms alarm-mode detection
// when the enforcement windows expire; if the attack is still in
// progress the next detection re-invokes with double the previous
// duration (§IV-E1: "the victim DAS can re-invoke the functions with a
// longer duration").
type AutoDefendPolicy struct {
	Functions []Function
	Duration  time.Duration
	Escalate  bool
	// MaxDuration caps escalation growth (default 7 days).
	MaxDuration time.Duration

	lastDuration time.Duration
}

// SetAlarmMode toggles alarm mode on all local routers.
func (c *Controller) SetAlarmMode(on bool) {
	for _, r := range c.routers {
		r.SetAlarmMode(on)
	}
}

// handleAlarmSample counts samples; crossing the threshold within the
// window declares an attack: local routers quit alarm mode and all
// peers are told to quit too (i.e. start dropping).
func (c *Controller) handleAlarmSample(s AlarmSample) {
	now := c.now()
	c.alarmTimes = append(c.alarmTimes, now)
	// Discard samples outside the window.
	cut := 0
	for cut < len(c.alarmTimes) && now.Sub(c.alarmTimes[cut]) > c.cfg.AlarmWindow {
		cut++
	}
	c.alarmTimes = c.alarmTimes[cut:]
	if len(c.alarmTimes) < c.cfg.AlarmThreshold {
		return
	}
	c.alarmTimes = nil
	c.m.attacksDetected.Inc()
	c.trace.Emit(obs.Event{Kind: obs.EvAttackDetected, AS: uint32(c.AS), Peer: uint32(s.SrcAS), Src: s.Src, Dst: s.Dst})
	c.SetAlarmMode(false)
	for _, p := range c.establishedPeers() {
		c.sendMsg(p, &ControlMsg{Type: MsgQuitAlarm, From: c.AS})
	}
	if c.AutoDefend != nil && len(c.AutoDefend.Functions) > 0 {
		pol := c.AutoDefend
		dur := pol.Duration
		if dur <= 0 {
			dur = DefaultDuration
		}
		// Escalation: each successive detection doubles the duration
		// (§IV-E1), bounded by MaxDuration.
		if pol.lastDuration > 0 {
			dur = pol.lastDuration * 2
		}
		maxDur := pol.MaxDuration
		if maxDur <= 0 {
			maxDur = 7 * 24 * time.Hour
		}
		if dur > maxDur {
			dur = maxDur
		}
		pol.lastDuration = dur
		var invs []Invocation
		for _, f := range pol.Functions {
			invs = append(invs, Invocation{Prefixes: c.OwnPrefixes(), Function: f, Duration: dur})
		}
		c.Invoke(invs...)
		if pol.Escalate {
			// Re-arm detection when enforcement lapses: if the attack
			// persists, the alarm path fires again and re-invokes.
			c.after(dur, func() { c.SetAlarmMode(true) })
		}
	}
	if c.OnAttackDetected != nil {
		c.OnAttackDetected(s.SrcAS)
	}
}

// OwnPrefixes returns the prefixes the topology assigns to this AS.
func (c *Controller) OwnPrefixes() []netip.Prefix {
	a := c.topo.AS(c.AS)
	if a == nil {
		return nil
	}
	return a.Prefixes
}

// ErrNotDeployed reports operations on ASes without DISCS.
var ErrNotDeployed = errors.New("core: AS has not deployed DISCS")
