package core

import "fmt"

// OptionError is the typed validation failure returned by the
// options-struct constructors (NewControllerWithOptions,
// NewBorderRouterWithOptions, NewSystemWithOptions). Callers branch on
// it with errors.As and on the offending field without parsing the
// message:
//
//	var oe *core.OptionError
//	if errors.As(err, &oe) && oe.Field == "Tables" { ... }
type OptionError struct {
	Struct string // the options struct, e.g. "RouterOptions"
	Field  string // the offending field, e.g. "Tables"
	Reason string // what is wrong with it, e.g. "required"
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("core: %s.%s: %s", e.Struct, e.Field, e.Reason)
}

func optErr(strct, field, reason string) *OptionError {
	return &OptionError{Struct: strct, Field: field, Reason: reason}
}
