package core

import (
	"net/netip"
	"testing"
	"time"

	"discs/internal/packet"
	"discs/internal/topology"
)

// invokeAll invokes the given functions for the victim's whole address
// space and settles.
func invokeAll(t *testing.T, s *System, victim topology.ASN, funcs ...Function) {
	t.Helper()
	c := s.Controllers[victim]
	var invs []Invocation
	for _, f := range funcs {
		invs = append(invs, Invocation{
			Prefixes: c.OwnPrefixes(),
			Function: f,
			Duration: 24 * time.Hour,
		})
	}
	if _, err := c.Invoke(invs...); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	// Step past the grace interval so verification enforces.
	s.Net.Sim.After(DefaultGrace+time.Second, func() {})
	s.Settle()
}

func mkV4(src, dst string) *packet.IPv4 {
	return &packet.IPv4{
		TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst),
		Payload: []byte("e2e payload"),
	}
}

// TestE2EDDoSDefense runs the full paper scenario on the data plane:
// AS1004 is under d-DDoS from agents in AS1001 (a DAS peer) and AS1002
// (legacy). After invoking DP+CDP:
//   - spoofed packets leaving the peer are dropped at the peer (DP),
//   - spoofed packets claiming peer sources from legacy ASes are
//     dropped at the victim (CDP verification),
//   - genuine traffic keeps flowing (IFP-free).
func TestE2EDDoSDefense(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	invokeAll(t, s, 1004, DP, CDP)

	// 1. Agent in AS1001 spoofing arbitrary source → dropped at AS1001.
	res := s.SendV4(1001, mkV4("203.0.113.7", "172.16.4.10"))
	if res.Delivered || res.DroppedAt != 1001 {
		t.Fatalf("spoofed-at-peer result = %+v", res)
	}

	// 2. Agent in legacy AS1002 spoofing AS1001's (peer) space →
	//    dropped at the victim by CDP verification.
	res = s.SendV4(1002, mkV4("172.16.1.99", "172.16.4.10"))
	if res.Delivered || res.DroppedAt != 1004 {
		t.Fatalf("spoofed-peer-src result = %+v", res)
	}

	// 3. Genuine traffic from the peer → stamped, verified, delivered.
	res = s.SendV4(1001, mkV4("172.16.1.10", "172.16.4.10"))
	if !res.Delivered {
		t.Fatalf("genuine peer traffic dropped: %+v", res)
	}
	sawStamp, sawVerify := false, false
	for _, h := range res.Hops {
		if h.Verdict == VerdictPassStamped {
			sawStamp = true
		}
		if h.Verdict == VerdictPassVerified {
			sawVerify = true
		}
	}
	if !sawStamp || !sawVerify {
		t.Fatalf("hops = %+v", res.Hops)
	}

	// 4. Genuine traffic from a legacy AS (its own space) → delivered:
	//    CDP-verify only applies to peer sources.
	res = s.SendV4(1002, mkV4("172.16.2.10", "172.16.4.10"))
	if !res.Delivered {
		t.Fatalf("legacy genuine traffic dropped: %+v", res)
	}

	// 5. Traffic to a different destination is never touched.
	res = s.SendV4(1001, mkV4("172.16.1.10", "172.16.3.10"))
	if !res.Delivered {
		t.Fatalf("unrelated traffic dropped: %+v", res)
	}
}

// TestE2EReflectionDefense exercises SP+CSP against s-DDoS: agents
// spoof the victim's source toward reflectors.
func TestE2EReflectionDefense(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	invokeAll(t, s, 1004, SP, CSP)

	// Agent in peer AS1001 sends a request spoofing victim AS1004's
	// source toward a reflector in legacy AS1003 → dropped at AS1001
	// by SP.
	res := s.SendV4(1001, mkV4("172.16.4.66", "172.16.3.10"))
	if res.Delivered || res.DroppedAt != 1001 {
		t.Fatalf("reflection request result = %+v", res)
	}

	// Agent in legacy AS1002 spoofs the victim's source toward the
	// peer AS1001: CSP verification at the peer drops it (no valid
	// mark).
	res = s.SendV4(1002, mkV4("172.16.4.66", "172.16.1.10"))
	if res.Delivered || res.DroppedAt != 1001 {
		t.Fatalf("spoofed-to-peer result = %+v", res)
	}

	// The victim's genuine requests to the peer are stamped (CSP) and
	// verified.
	res = s.SendV4(1004, mkV4("172.16.4.10", "172.16.1.10"))
	if !res.Delivered {
		t.Fatalf("victim's genuine request dropped: %+v", res)
	}

	// The victim's requests to legacy ASes are unstamped but flow.
	res = s.SendV4(1004, mkV4("172.16.4.10", "172.16.3.10"))
	if !res.Delivered {
		t.Fatalf("victim's request to legacy dropped: %+v", res)
	}
}

// TestE2EIPv6 runs CDP over IPv6 end to end, checking the option is
// added and removed transparently.
func TestE2EIPv6(t *testing.T) {
	s := testInternet(t)
	// Add IPv6 prefixes for two stubs.
	if err := s.Net.Topo.AddPrefix(1001, netip.MustParsePrefix("2001:db8:1::/48")); err != nil {
		t.Fatal(err)
	}
	if err := s.Net.Topo.AddPrefix(1004, netip.MustParsePrefix("2001:db8:4::/48")); err != nil {
		t.Fatal(err)
	}
	s.Net.Speakers[1001].Originate(netip.MustParsePrefix("2001:db8:1::/48"))
	s.Net.Speakers[1004].Originate(netip.MustParsePrefix("2001:db8:4::/48"))
	if err := s.Net.Converge(); err != nil {
		t.Fatal(err)
	}
	deploy(t, s, 1001, 1004)
	c := s.Controllers[1004]
	if _, err := c.Invoke(Invocation{
		Prefixes: []netip.Prefix{netip.MustParsePrefix("2001:db8:4::/48")},
		Function: CDP, Duration: 24 * time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	s.Settle()
	s.Net.Sim.After(DefaultGrace+time.Second, func() {})
	s.Settle()

	p := &packet.IPv6{
		HopLimit: 64, Proto: packet.ProtoUDP,
		Src:     netip.MustParseAddr("2001:db8:1::10"),
		Dst:     netip.MustParseAddr("2001:db8:4::10"),
		Payload: []byte("v6 e2e"),
	}
	res := s.SendV6(1001, p)
	if !res.Delivered {
		t.Fatalf("genuine v6 dropped: %+v", res)
	}
	if _, has := p.MarkV6(); has {
		t.Fatal("DISCS option visible after delivery (not erased)")
	}

	// Spoofed v6 claiming the peer's space from a legacy AS.
	q := &packet.IPv6{
		HopLimit: 64, Proto: packet.ProtoUDP,
		Src:     netip.MustParseAddr("2001:db8:1::bad"),
		Dst:     netip.MustParseAddr("2001:db8:4::10"),
		Payload: []byte("v6 spoof"),
	}
	res = s.SendV6(1002, q)
	if res.Delivered || res.DroppedAt != 1004 {
		t.Fatalf("spoofed v6 result = %+v", res)
	}
}

// TestE2ELegacyVictimUnprotected confirms the incentive property: an
// AS that has not deployed DISCS gets no protection (§III-B).
func TestE2ELegacyVictimUnprotected(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	invokeAll(t, s, 1004, DP, CDP)
	// Spoofed traffic toward legacy AS1003 sails through everywhere.
	res := s.SendV4(1001, mkV4("203.0.113.7", "172.16.3.10"))
	if !res.Delivered {
		t.Fatalf("spoofed traffic to legacy AS dropped: %+v — DISCS must be on-demand only", res)
	}
}

// TestE2EOnDemandOnly confirms no data-plane work happens before an
// invocation even with peering and keys in place.
func TestE2EOnDemandOnly(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	res := s.SendV4(1001, mkV4("203.0.113.7", "172.16.4.10"))
	if !res.Delivered {
		t.Fatalf("packet dropped without invocation: %+v", res)
	}
	if s.Routers[1001].Stats().MACsComputed+s.Routers[1004].Stats().MACsComputed != 0 {
		t.Fatal("crypto ran without invocation")
	}
}

// TestE2EExpiryRestoresNormalForwarding lets the invocation lapse and
// checks that spoofed traffic flows again (no stuck state).
func TestE2EExpiryRestoresNormalForwarding(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	c := s.Controllers[1004]
	if _, err := c.Invoke(Invocation{
		Prefixes: c.OwnPrefixes(), Function: DP, Duration: time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	s.Settle()
	res := s.SendV4(1001, mkV4("203.0.113.7", "172.16.4.10"))
	if res.Delivered {
		t.Fatal("spoofed packet delivered during invocation")
	}
	// Let the window lapse.
	s.Net.Sim.After(2*time.Minute, func() {})
	s.Settle()
	res = s.SendV4(1001, mkV4("203.0.113.7", "172.16.4.10"))
	if !res.Delivered {
		t.Fatalf("spoofed packet still dropped after expiry: %+v", res)
	}
}

// TestE2EAlarmEscalation drives alarm-mode: the victim invokes CDP in
// alarm mode, spoofed packets pass but are sampled, and when the
// threshold is crossed the controller tells peers to quit alarm mode.
func TestE2EAlarmEscalation(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	victim := s.Controllers[1004]
	victim.cfg.AlarmThreshold = 10
	detected := topology.ASN(0)
	victim.OnAttackDetected = func(src topology.ASN) { detected = src }

	if _, err := victim.Invoke(Invocation{
		Prefixes: victim.OwnPrefixes(), Function: CDP, Duration: 24 * time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	s.Settle()
	victim.SetAlarmMode(true)
	s.Net.Sim.After(DefaultGrace+time.Second, func() {})
	s.Settle()

	// Spoofed packets (claiming peer space) pass in alarm mode...
	res := s.SendV4(1002, mkV4("172.16.1.99", "172.16.4.10"))
	if !res.Delivered {
		t.Fatalf("alarm mode dropped: %+v", res)
	}
	// ...until the threshold is crossed.
	for i := 0; i < 15; i++ {
		s.SendV4(1002, mkV4("172.16.1.99", "172.16.4.10"))
	}
	if detected == 0 {
		t.Fatal("attack not detected")
	}
	// Alarm mode is off now: next spoofed packet drops.
	res = s.SendV4(1002, mkV4("172.16.1.99", "172.16.4.10"))
	if res.Delivered {
		t.Fatal("spoofed packet delivered after alarm escalation")
	}
}

// TestE2ETTLExpiryScrubsMark reproduces the §VI-E2 replay-learning
// attack: a host inside the stamping DAS sends a packet whose TTL
// expires right outside the border and reads the returned ICMP. The
// DAS border must scrub the embedded mark.
func TestE2ETTLExpiryScrubsMark(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	invokeAll(t, s, 1004, DP, CDP)

	// TTL=1: expires at the first transit AS (AS100).
	p := mkV4("172.16.1.10", "172.16.4.10")
	p.TTL = 1
	res := s.SendV4(1001, p)
	if res.Delivered || !res.TTLExpired {
		t.Fatalf("result = %+v, want TTL expiry", res)
	}
	if res.ICMPReturned == nil {
		t.Fatal("no ICMP returned")
	}
	emb, ok := packet.ICMPv4Embedded(res.ICMPReturned)
	if !ok {
		t.Fatal("no embedded packet in ICMP")
	}
	// The embedded packet carried a freshly stamped mark before
	// scrubbing; after the DAS border scrub it must NOT verify.
	key := s.Routers[1001].Tables.Keys.StampKey(1004)
	if key == nil {
		t.Fatal("no stamp key")
	}
	if ok, _ := (V4{emb}).Verify(key); ok {
		t.Fatal("attacker can learn a valid mark from ICMP TTL-exceeded")
	}
	if s.Routers[1001].Stats().ICMPScrubbed != 1 {
		t.Fatalf("scrub count = %d", s.Routers[1001].Stats().ICMPScrubbed)
	}
}

// TestE2EStampedPacketCrossesLegacyTransit confirms backward
// compatibility: marks survive legacy transit untouched (the transit
// ASes in SendV4 only decrement TTL, and the mark lives in fields
// routers do not rewrite).
func TestE2EStampedPacketCrossesLegacyTransit(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004) // path 1001→100→10→20→300→1004: all transit legacy
	invokeAll(t, s, 1004, CDP)
	res := s.SendV4(1001, mkV4("172.16.1.10", "172.16.4.10"))
	if !res.Delivered {
		t.Fatalf("stamped packet lost in legacy transit: %+v", res)
	}
}
