// Checkpoint/restore seam. The core layer serializes exactly its
// durable state — the same state that survives a controller crash:
//
//   - the deploy ledger (which ASes deployed, in what order, with what
//     seed), from which restore rebuilds controllers with identical
//     node names, mesh-link creation order and RNG streams;
//   - each controller's campaign journal (serial, invocations, end
//     times) and resumption-secret cache — the two fields Crash()
//     deliberately keeps;
//   - each border router's function tables (prefix → op → window).
//
// Volatile state is deliberately absent, with crash semantics: peer
// sessions, heartbeat timers and the purge schedule are rebuilt by
// Restart's journal replay, and session keys are renegotiated — the
// KeyTable only ever holds derived CMAC subkeys, so raw key material
// never touches the image. (The resumption secrets do; a deployment
// that persisted images to hostile storage would seal them, which is
// out of scope for a simulator.)
package core

import (
	"fmt"
	"net/netip"
	"sort"

	"discs/internal/snapcodec"
	"discs/internal/topology"
)

// tableKinds is the serialization order of the four function tables.
var tableKinds = []TableKind{TableInSrc, TableInDst, TableOutSrc, TableOutDst}

// checkpoint serializes the function table's entries.
func (ft *FuncTable) checkpoint(w *snapcodec.Writer) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	prefixes := make([]netip.Prefix, 0, len(ft.entries))
	for p := range ft.entries {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if c := prefixes[i].Addr().Compare(prefixes[j].Addr()); c != 0 {
			return c < 0
		}
		return prefixes[i].Bits() < prefixes[j].Bits()
	})
	w.Uvarint(uint64(len(prefixes)))
	for _, p := range prefixes {
		w.Prefix(p)
		wins := ft.entries[p]
		ops := make([]Op, 0, len(wins))
		for op := range wins {
			ops = append(ops, op)
		}
		sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
		w.Uvarint(uint64(len(ops)))
		for _, op := range ops {
			win := wins[op]
			w.U8(uint8(op))
			w.Time(win.start)
			w.Time(win.end)
			w.Duration(win.grace)
		}
	}
}

// restore loads entries written by checkpoint and rebuilds the lookup
// snapshot once.
func (ft *FuncTable) restore(r *snapcodec.Reader) error {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	np := r.Count(6)
	for i := 0; i < np; i++ {
		p := r.Prefix()
		nops := r.Count(4)
		wins := make(map[Op]window, nops)
		for j := 0; j < nops; j++ {
			op := Op(r.U8())
			wins[op] = window{start: r.Time(), end: r.Time(), grace: r.Duration()}
		}
		if r.Err() != nil {
			return r.Err()
		}
		ft.entries[p] = wins
	}
	ft.rebuildLocked()
	return r.Err()
}

// CheckpointJournal serializes the controller's durable state: the
// campaign journal and the resumption-secret cache.
func (c *Controller) CheckpointJournal(w *snapcodec.Writer) error {
	w.Uvarint(c.campaignSerial)
	w.Uvarint(uint64(len(c.campaigns)))
	for _, cp := range c.campaigns {
		w.Uvarint(cp.serial)
		w.Time(cp.end)
		w.Uvarint(uint64(len(cp.invs)))
		for _, inv := range cp.invs {
			w.Uvarint(uint64(len(inv.Prefixes)))
			for _, p := range inv.Prefixes {
				w.Prefix(p)
			}
			w.Uvarint(uint64(inv.Function))
			w.Duration(inv.Duration)
			w.Bool(inv.Alarm)
		}
	}

	asns := make([]topology.ASN, 0, len(c.resumeCache))
	for a := range c.resumeCache {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	w.Uvarint(uint64(len(asns)))
	for _, a := range asns {
		secret := c.resumeCache[a]
		w.Uvarint(uint64(a))
		w.Bytes(secret[:])
	}
	return w.Err()
}

// RestoreJournal loads state written by CheckpointJournal into a
// freshly deployed controller.
func (c *Controller) RestoreJournal(r *snapcodec.Reader) error {
	c.campaignSerial = r.Uvarint()
	nc := r.Count(3)
	for i := 0; i < nc; i++ {
		cp := campaign{serial: r.Uvarint(), end: r.Time()}
		ni := r.Count(3)
		for j := 0; j < ni; j++ {
			var inv Invocation
			np := r.Count(6)
			for k := 0; k < np; k++ {
				inv.Prefixes = append(inv.Prefixes, r.Prefix())
			}
			inv.Function = Function(r.Uvarint())
			inv.Duration = r.Duration()
			inv.Alarm = r.Bool()
			cp.invs = append(cp.invs, inv)
		}
		if r.Err() != nil {
			return r.Err()
		}
		c.campaigns = append(c.campaigns, cp)
	}
	ns := r.Count(3)
	for i := 0; i < ns; i++ {
		a := topology.ASN(r.Uvarint())
		b := r.Bytes()
		if r.Err() != nil {
			return r.Err()
		}
		if len(b) != 16 {
			return fmt.Errorf("core: restore: AS%d resumption secret is %d bytes, want 16", a, len(b))
		}
		var secret [16]byte
		copy(secret[:], b)
		c.resumeCache[a] = secret
	}
	return r.Err()
}

// Checkpoint serializes the system's durable control-plane state: the
// deploy ledger and, per deployed AS, the controller journal and the
// router's function tables.
func (s *System) Checkpoint(w *snapcodec.Writer) error {
	w.Uvarint(uint64(len(s.deploys)))
	for _, d := range s.deploys {
		w.Uvarint(uint64(d.asn))
		w.Varint(d.seed)
		if err := s.Controllers[d.asn].CheckpointJournal(w); err != nil {
			return err
		}
		tables := s.Routers[d.asn].Tables
		for _, kind := range tableKinds {
			tables.In[kind].checkpoint(w)
		}
	}
	return w.Err()
}

// RestoreCheckpoint replays the deploy ledger written by Checkpoint
// against a restored network: each AS is re-deployed structurally
// (deployNode — no Ad replay, no re-origination; the restored RIBs
// already carry the Ads) and its durable state injected. The caller
// completes recovery by calling Restart per AS, which re-drives the
// journal replay exactly as a post-crash restart does, then Settle.
func (s *System) RestoreCheckpoint(r *snapcodec.Reader) error {
	n := r.Count(4)
	if r.Err() != nil {
		return r.Err()
	}
	for i := 0; i < n; i++ {
		asn := topology.ASN(r.Uvarint())
		seed := r.Varint()
		if r.Err() != nil {
			return r.Err()
		}
		ctrl, sp, err := s.deployNode(asn, seed)
		if err != nil {
			return err
		}
		sp.OnAd(ctrl.HandleAd)
		if err := ctrl.RestoreJournal(r); err != nil {
			return err
		}
		tables := s.Routers[asn].Tables
		for _, kind := range tableKinds {
			if err := tables.In[kind].restore(r); err != nil {
				return err
			}
		}
	}
	return r.Err()
}

// Deployed returns the deployed ASNs in deploy order (the ledger a
// checkpoint serializes). A restored scenario uses it to recover the
// DAS set — and the victim, by convention the last deployer — without
// re-deriving them from the topology.
func (s *System) Deployed() []topology.ASN {
	out := make([]topology.ASN, len(s.deploys))
	for i, d := range s.deploys {
		out[i] = d.asn
	}
	return out
}

// RestartAll re-runs the crash-recovery path on every deployed
// controller in deploy order — the final step of a snapshot restore.
func (s *System) RestartAll() error {
	for _, d := range s.deploys {
		if err := s.Restart(d.asn); err != nil {
			return err
		}
	}
	return nil
}
