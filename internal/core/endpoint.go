package core

import (
	"time"

	"discs/internal/netsim"
	"discs/internal/transport"
)

// The controller's I/O seam. Everything a Controller asks of its host
// environment goes through two small interfaces: FrameSender (outbound
// frames toward named peer controllers) and Runtime (clock and
// timers). In simulations both are backed by the controller's netsim
// node — exactly the wiring that existed before the seam was cut — and
// in service mode (internal/service, cmd/discs-node) they are backed
// by a TCP+TLS transport and the wall clock.

// FrameSender is the outbound half of the controller's transport: it
// delivers one frame to the named peer controller, best-effort. False
// means the frame was dropped (unknown peer, link/connection down);
// the controller's retry machinery owns recovery, exactly as it does
// for frames lost inside the simulator.
type FrameSender interface {
	Send(peer string, f transport.Frame) bool
}

// Runtime is the controller's clock and timer source. Now is the
// offset from the epoch (simulated time in simulations, wall time
// since the Unix epoch in service mode). After schedules fn on the
// controller's serialized event loop; AfterBackground is its
// housekeeping variant — in simulations background events do not keep
// the simulator from settling, in service mode the two are identical.
type Runtime interface {
	Now() time.Duration
	After(d time.Duration, fn func())
	AfterBackground(d time.Duration, fn func())
}

// nodeRuntime adapts a netsim node to the Runtime seam. netsim.Time is
// an alias of time.Duration, so the adaptation is free and the event
// schedule is bit-identical to calling the node directly.
type nodeRuntime struct{ n *netsim.Node }

func (r nodeRuntime) Now() time.Duration                        { return r.n.Now() }
func (r nodeRuntime) After(d time.Duration, fn func())          { r.n.After(d, fn) }
func (r nodeRuntime) AfterBackground(d time.Duration, fn func()) { r.n.AfterBackground(d, fn) }

// simConn adapts netsim links to the FrameSender seam: a Send is one
// link delivery of a ctrlFrame, with on-demand link creation toward
// the peer's directory node — the pre-seam wiring, verbatim, so
// simulation runs stay bit-identical.
type simConn struct{ c *Controller }

func (s simConn) Send(peer string, f transport.Frame) bool {
	ent := s.c.dir.Lookup(peer)
	if ent == nil || ent.Node == nil {
		return false
	}
	l := s.c.linkTo(ent.Node)
	if l == nil {
		return false
	}
	return l.Send(s.c.node, &ctrlFrame{Kind: frameKind(f.Kind), From: f.From, Data: f.Data})
}

// HandleFrame feeds one inbound transport frame into the controller's
// state machine. It is the service-mode receive path — the host
// deserializes a frame off its transport and calls this under the
// controller's event-loop lock. In simulations the node handler
// (Controller.receive) performs the same dispatch.
func (c *Controller) HandleFrame(f transport.Frame) {
	c.handleFrame(frameKind(f.Kind), f.From, f.Data)
}

// IsControlFrameKind reports whether kind is one of the control-plane
// frame kinds the controller consumes. Hosts multiplexing other
// traffic (e.g. the service data plane) onto the same transport pick
// their kinds outside this range.
func IsControlFrameKind(kind uint8) bool { return kind < uint8(numFrameKinds) }
