package core

import "testing"

// TestTableIAnatomy verifies the function decomposition against
// Table I of the paper, row by row.
func TestTableIAnatomy(t *testing.T) {
	// DP: a single peer-side filter on Out-Dst.
	peer := PeerOps(DP)
	if len(peer) != 1 || !peer[TableOutDst].Has(OpDPFilter) {
		t.Errorf("DP peer ops = %v", peer)
	}
	if len(VictimOps(DP)) != 0 {
		t.Errorf("DP victim ops = %v, want none", VictimOps(DP))
	}

	// CDP: peer stamps on Out-Dst; victim verifies on In-Dst.
	peer = PeerOps(CDP)
	if len(peer) != 1 || !peer[TableOutDst].Has(OpCDPStamp) {
		t.Errorf("CDP peer ops = %v", peer)
	}
	victim := VictimOps(CDP)
	if len(victim) != 1 || !victim[TableInDst].Has(OpCDPVerify) {
		t.Errorf("CDP victim ops = %v", victim)
	}

	// SP: a single peer-side filter on Out-Src.
	peer = PeerOps(SP)
	if len(peer) != 1 || !peer[TableOutSrc].Has(OpSPFilter) {
		t.Errorf("SP peer ops = %v", peer)
	}
	if len(VictimOps(SP)) != 0 {
		t.Errorf("SP victim ops = %v, want none", VictimOps(SP))
	}

	// CSP: victim stamps on Out-Src; peer verifies on In-Src.
	victim = VictimOps(CSP)
	if len(victim) != 1 || !victim[TableOutSrc].Has(OpCSPStamp) {
		t.Errorf("CSP victim ops = %v", victim)
	}
	peer = PeerOps(CSP)
	if len(peer) != 1 || !peer[TableInSrc].Has(OpCSPVerify) {
		t.Errorf("CSP peer ops = %v", peer)
	}
}

// TestPossibleOpsPerTable checks §V-A: the sets of possible functions
// for In-Src, In-Dst, Out-Src and Out-Dst are {CSP-verify},
// {CDP-verify}, {SP, CSP-stamp} and {DP, CDP-stamp}.
func TestPossibleOpsPerTable(t *testing.T) {
	perTable := map[TableKind]OpSet{}
	for f := DP; f < numFunctions; f++ {
		for table, ops := range PeerOps(f) {
			perTable[table] |= ops
		}
		for table, ops := range VictimOps(f) {
			perTable[table] |= ops
		}
	}
	want := map[TableKind]OpSet{
		TableInSrc:  OpSet(OpCSPVerify),
		TableInDst:  OpSet(OpCDPVerify),
		TableOutSrc: OpSet(OpSPFilter) | OpSet(OpCSPStamp),
		TableOutDst: OpSet(OpDPFilter) | OpSet(OpCDPStamp),
	}
	for table, ops := range want {
		if perTable[table] != ops {
			t.Errorf("%v possible ops = %v, want %v", table, perTable[table], ops)
		}
	}
}

func TestParseFunction(t *testing.T) {
	cases := map[string]Function{"DP": DP, "cdp": CDP, " SP ": SP, "Csp": CSP}
	for in, want := range cases {
		got, err := ParseFunction(in)
		if err != nil || got != want {
			t.Errorf("ParseFunction(%q) = %v %v", in, got, err)
		}
	}
	if _, err := ParseFunction("XYZ"); err == nil {
		t.Error("ParseFunction(XYZ) should fail")
	}
}

func TestFunctionString(t *testing.T) {
	for f, want := range map[Function]string{DP: "DP", CDP: "CDP", SP: "SP", CSP: "CSP"} {
		if f.String() != want {
			t.Errorf("%d.String() = %q", f, f.String())
		}
	}
}

func TestOpSetString(t *testing.T) {
	if OpSet(0).String() != "∅" {
		t.Error("empty OpSet string")
	}
	s := OpSet(OpDPFilter) | OpSet(OpCDPStamp)
	if s.String() != "DP-filter+CDP-stamp" {
		t.Errorf("OpSet string = %q", s.String())
	}
}

func TestTableKindString(t *testing.T) {
	names := map[TableKind]string{
		TableInSrc: "In-Src", TableInDst: "In-Dst",
		TableOutSrc: "Out-Src", TableOutDst: "Out-Dst",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

// TestSixBitsSuffice verifies the §VI-C2 claim that 6 bits store the
// function table state: 1 bit In-Src, 1 bit In-Dst, 2 bits Out-Src,
// 2 bits Out-Dst.
func TestSixBitsSuffice(t *testing.T) {
	all := OpSet(OpDPFilter | OpCDPStamp | OpCDPVerify | OpSPFilter | OpCSPStamp | OpCSPVerify)
	if all >= 1<<6 {
		t.Fatalf("op bits exceed 6: %08b", all)
	}
}
