package core

import (
	"fmt"
	"time"

	"discs/internal/bgp"
	"discs/internal/obs"
	"discs/internal/packet"
	"discs/internal/topology"
)

// System wires a BGP network, DISCS controllers and border-router data
// planes into a runnable whole, and provides packet-level end-to-end
// delivery across the AS topology.
type System struct {
	Net *bgp.Network
	Dir *Directory

	Controllers map[topology.ASN]*Controller
	Routers     map[topology.ASN]*BorderRouter

	cfg Config
	reg *obs.Registry

	// deploys records every Deploy in order with its caller-visible
	// seed, so a checkpoint can rebuild the same controllers — same
	// node names, mesh link creation order and RNG seeds — on restore
	// (see checkpoint.go).
	deploys []deployRecord
}

// deployRecord is one Deploy call as the snapshot layer replays it.
type deployRecord struct {
	asn  topology.ASN
	seed int64
}

// SystemOptions configures a System. Net is required; Config tunes
// protocol behaviour for every controller the system deploys.
// Validation failures are *OptionError.
type SystemOptions struct {
	// Net is the converged (or to-be-converged) BGP network the system
	// wires DISCS into (required).
	Net *bgp.Network
	// Config is handed to every deployed controller; its Registry field
	// also selects the unified metrics registry (see below).
	Config Config
}

// NewSystemWithOptions creates a system from an options struct. All
// subsystems publish into one registry: Config.Registry when set,
// otherwise the network simulator's. The simulator's counters
// (including everything BGP convergence already accumulated) are
// re-homed into it, so one snapshot covers the whole system.
func NewSystemWithOptions(o SystemOptions) (*System, error) {
	if o.Net == nil {
		return nil, optErr("SystemOptions", "Net", "required")
	}
	cfg := o.Config
	reg := cfg.Registry
	if reg == nil {
		reg = o.Net.Sim.Registry()
	} else {
		o.Net.Sim.MoveToRegistry(reg)
	}
	if cfg.TraceCapacity > 0 {
		reg.SetTraceCapacity(cfg.TraceCapacity)
	}
	// Topology routing-cache gauges (tree count, hit rate) join the
	// same registry.
	o.Net.Topo.PublishMetrics(reg)
	return &System{
		Net:         o.Net,
		Dir:         NewDirectory(),
		Controllers: make(map[topology.ASN]*Controller),
		Routers:     make(map[topology.ASN]*BorderRouter),
		cfg:         cfg,
		reg:         reg,
	}, nil
}

// NewSystem creates a system around a converged (or to-be-converged)
// BGP network.
//
// Deprecated: use NewSystemWithOptions. This shim keeps existing
// callers compiling for one release and panics only on a nil network —
// the single case NewSystemWithOptions rejects.
func NewSystem(net *bgp.Network, cfg Config) *System {
	s, err := NewSystemWithOptions(SystemOptions{Net: net, Config: cfg})
	if err != nil {
		panic(err)
	}
	return s
}

// Registry returns the unified registry every subsystem publishes
// into.
func (s *System) Registry() *obs.Registry { return s.reg }

// Stats returns the system-wide metrics snapshot: netsim delivery and
// fault counters, per-AS controller tallies ("asN.ctrl.*") and per-AS
// data-plane counters ("asN.router.*"), stamped with the simulated
// time. Fleet-wide aggregates fall out of Snapshot.Sum, e.g.
// Stats().Sum(MetricRouterInDropped) for total inbound drops. It
// replaces the removed DataPlaneStats aggregation.
func (s *System) Stats() obs.Snapshot { return s.reg.Snapshot() }

// Deploy turns an AS into a DAS: it creates the controller (with its
// own netsim node), a border-router data plane, hooks DISCS-Ad
// extraction into the AS's BGP speaker, and re-originates the AS's
// prefixes carrying the DISCS-Ad (§IV-B). Discovery, peering and key
// negotiation then run inside the simulator; call s.Net.Converge() (or
// run the simulator) to let them complete.
func (s *System) Deploy(asn topology.ASN, seed int64) (*Controller, error) {
	ctrl, sp, err := s.deployNode(asn, seed)
	if err != nil {
		return nil, err
	}

	// Existing Ads already seen by the speaker are replayed to the new
	// controller, then future Ads stream in.
	for _, ad := range sp.KnownAds() {
		ctrl.HandleAd(ad)
	}
	sp.OnAd(ctrl.HandleAd)

	// Announce ourselves Internet-wide. Only prefixes the speaker
	// actually originates are re-announced: paper-scale runs originate
	// one prefix per DAS (Network.OriginateFirst) rather than the full
	// 442k-prefix table, and the Ad rides on whatever is in BGP.
	ad := bgp.NewDISCSAdAttr(ctrl.Ad())
	announced := 0
	for _, p := range s.Net.Topo.AS(asn).Prefixes {
		if r := sp.LocRib(p); r == nil || !r.Local {
			continue
		}
		if err := sp.ReOriginate(p, ad); err != nil {
			return nil, err
		}
		announced++
	}
	if announced == 0 && len(s.Net.Topo.AS(asn).Prefixes) > 0 {
		return nil, fmt.Errorf("core: AS%d originates none of its prefixes; run OriginateAll or OriginateFirst before Deploy", asn)
	}
	return ctrl, nil
}

// deployNode is the structural half of Deploy: node, mesh links,
// controller, router, bookkeeping — everything except the Ad replay
// and the BGP re-origination. The snapshot restore path uses it alone:
// a restored world already has the Ads in its RIBs, and replay happens
// through Restart (the same journal-replay path a crashed controller
// takes).
func (s *System) deployNode(asn topology.ASN, seed int64) (*Controller, *bgp.Speaker, error) {
	if _, dup := s.Controllers[asn]; dup {
		return nil, nil, fmt.Errorf("core: AS%d already deployed", asn)
	}
	sp := s.Net.Speakers[asn]
	if sp == nil {
		return nil, nil, fmt.Errorf("core: AS%d has no BGP speaker", asn)
	}
	name := fmt.Sprintf("ctrl.as%d", asn)
	node, err := s.Net.Sim.AddNode(name)
	if err != nil {
		return nil, nil, err
	}
	// The controller lives in its AS: it shares the border node's
	// shard, so speaker<->controller hand-offs (Ad replay, router
	// programming) stay shard-local under the parallel engine.
	node.SetShard(sp.Node().Shard())
	if s.Net.Sim.Sharded() {
		// Preconnect the controller mesh. Under the parallel engine,
		// linkTo's lazy sim.Connect would mutate the link table and the
		// engine's lookahead bound from inside event execution; creating
		// the links here, from driver context, keeps the run epochs
		// structurally stable. Directory order is sorted, so the link
		// table is deterministic.
		for _, ent := range s.Dir.Entries() {
			if _, err := s.Net.Sim.Connect(node, ent.Node, s.cfg.CtrlLinkDelay); err != nil {
				return nil, nil, err
			}
		}
	}
	scope := fmt.Sprintf("as%d.", asn)
	effSeed := seed ^ s.cfg.Seed
	ctrl, err := NewControllerWithOptions(ControllerOptions{
		AS: asn, Name: name, Sim: s.Net.Sim, Node: node, Dir: s.Dir,
		Topo: s.Net.Topo, Config: s.cfg, Seed: effSeed,
		Registry: s.reg, Scope: scope,
	})
	if err != nil {
		return nil, nil, err
	}
	tables := NewTables(asn, s.Net.Topo.Pfx2AS())
	router, err := NewBorderRouterWithOptions(RouterOptions{
		Tables: tables, Seed: effSeed ^ 0x5eed,
		Registry: s.reg, Scope: scope, AS: asn,
		TraceSampleEvery: s.cfg.TraceSampleEvery,
	})
	if err != nil {
		return nil, nil, err
	}
	ctrl.AttachRouter(router)
	s.Controllers[asn] = ctrl
	s.Routers[asn] = router
	s.deploys = append(s.deploys, deployRecord{asn: asn, seed: seed})
	return ctrl, sp, nil
}

// Settle runs the simulator until the control plane goes quiet.
func (s *System) Settle() error {
	_, err := s.Net.Sim.RunAll()
	return err
}

// Crash takes down the controller of asn — not its border routers,
// which are separate boxes and keep enforcing their tables. Peers
// detect the silence via missed heartbeats and degrade gracefully.
func (s *System) Crash(asn topology.ASN) error {
	c := s.Controllers[asn]
	if c == nil {
		return fmt.Errorf("core: AS%d has no controller", asn)
	}
	c.Crash()
	return nil
}

// Restart brings a crashed controller back up and replays the
// BGP-learned DISCS-Ads into it, the same bootstrap Deploy performs:
// rediscovery, resumption handshakes, key deployment and campaign
// resync then run inside the simulator.
func (s *System) Restart(asn topology.ASN) error {
	c := s.Controllers[asn]
	if c == nil {
		return fmt.Errorf("core: AS%d has no controller", asn)
	}
	c.Restart()
	if sp := s.Net.Speakers[asn]; sp != nil {
		for _, ad := range sp.KnownAds() {
			c.HandleAd(ad)
		}
	}
	return nil
}

// Now returns the data-plane clock (simulated time mapped to wall
// clock).
func (s *System) Now() time.Time { return time.Unix(0, 0).UTC().Add(s.Net.Sim.Now()) }

// HopResult records what happened to a packet at one AS.
type HopResult struct {
	AS      topology.ASN
	Verdict Verdict
}

// DeliveryResult is the outcome of an end-to-end Send.
type DeliveryResult struct {
	Delivered bool
	// DroppedAt is the AS whose border router dropped the packet (0 if
	// delivered).
	DroppedAt topology.ASN
	Hops      []HopResult
	// TTLExpired is set when the packet died of TTL, in which case an
	// ICMP time-exceeded was generated (see ICMPReturned).
	TTLExpired bool
	// ICMPReturned is the time-exceeded message delivered back to the
	// packet's source address owner, after DISCS mark scrubbing at that
	// AS's border (§VI-E2). Nil unless TTL expired en route.
	ICMPReturned *packet.IPv4
}

// SendV4 injects an IPv4 packet at fromAS and walks it along the
// valley-free AS path toward the owner of its destination address,
// applying DISCS processing: outbound at the source AS border (if it
// is a DAS), inbound at the destination AS border (if it is a DAS).
// Transit ASes decrement TTL only — DISCS functions execute only at
// the victim's and peers' borders, never in transit (§III-B).
func (s *System) SendV4(fromAS topology.ASN, p *packet.IPv4) DeliveryResult {
	res := DeliveryResult{}
	dstAS, ok := s.Net.Topo.OwnerOf(p.Dst)
	if !ok {
		res.DroppedAt = fromAS
		return res
	}
	now := s.Now()

	// Outbound processing at the source AS border.
	if r := s.Routers[fromAS]; r != nil {
		v := r.ProcessOutbound(V4{p}, now)
		res.Hops = append(res.Hops, HopResult{fromAS, v})
		if v.Dropped() {
			res.DroppedAt = fromAS
			return res
		}
	}
	if dstAS == fromAS {
		res.Delivered = true
		return res
	}
	path, ok := s.Net.Topo.Path(fromAS, dstAS)
	if !ok {
		res.DroppedAt = fromAS
		return res
	}
	// Transit: TTL decrements at each AS hop (an abstraction of the
	// routers along the path).
	for i := 1; i < len(path); i++ {
		if p.TTL == 0 || p.TTL == 1 {
			p.TTL = 0
			res.TTLExpired = true
			res.DroppedAt = path[i]
			res.ICMPReturned = s.returnTimeExceeded(path[i], fromAS, p)
			return res
		}
		p.TTL--
	}
	// Inbound processing at the destination AS border.
	if r := s.Routers[dstAS]; r != nil {
		v := r.ProcessInbound(V4{p}, now)
		res.Hops = append(res.Hops, HopResult{dstAS, v})
		if v.Dropped() {
			res.DroppedAt = dstAS
			return res
		}
	}
	res.Delivered = true
	return res
}

// returnTimeExceeded builds the ICMP error at the expiring AS and
// routes it back toward the original source. If the AS owning the
// original source address is a DAS, its border router scrubs the
// embedded DISCS mark before the message enters the AS.
func (s *System) returnTimeExceeded(atAS, origFrom topology.ASN, orig *packet.IPv4) *packet.IPv4 {
	// The reporting router needs an address inside the expiring AS.
	a := s.Net.Topo.AS(atAS)
	if a == nil || len(a.Prefixes) == 0 || !a.Prefixes[0].Addr().Is4() {
		return nil
	}
	icmp, err := packet.ICMPv4TimeExceeded(a.Prefixes[0].Addr(), orig)
	if err != nil {
		return nil
	}
	// Serialize/reparse: the scrubber operates on raw bytes.
	b, err := icmp.Marshal()
	if err != nil {
		return nil
	}
	back, err := packet.ParseIPv4(b)
	if err != nil {
		return nil
	}
	// Inbound at the source-address owner's border: scrub marks.
	srcOwner, ok := s.Net.Topo.OwnerOf(orig.Src)
	if ok {
		if r := s.Routers[srcOwner]; r != nil {
			r.ScrubInboundICMP(back)
		}
	}
	_ = origFrom
	return back
}

// SendV6 is the IPv6 counterpart of SendV4 (hop limit instead of TTL;
// ICMPv6 handling is exercised directly in tests).
func (s *System) SendV6(fromAS topology.ASN, p *packet.IPv6) DeliveryResult {
	res := DeliveryResult{}
	dstAS, ok := s.Net.Topo.OwnerOf(p.Dst)
	if !ok {
		res.DroppedAt = fromAS
		return res
	}
	now := s.Now()
	if r := s.Routers[fromAS]; r != nil {
		v := r.ProcessOutbound(V6{p}, now)
		res.Hops = append(res.Hops, HopResult{fromAS, v})
		if v.Dropped() {
			res.DroppedAt = fromAS
			return res
		}
	}
	if dstAS == fromAS {
		res.Delivered = true
		return res
	}
	path, ok := s.Net.Topo.Path(fromAS, dstAS)
	if !ok {
		res.DroppedAt = fromAS
		return res
	}
	for i := 1; i < len(path); i++ {
		if p.HopLimit <= 1 {
			p.HopLimit = 0
			res.TTLExpired = true
			res.DroppedAt = path[i]
			return res
		}
		p.HopLimit--
	}
	if r := s.Routers[dstAS]; r != nil {
		v := r.ProcessInbound(V6{p}, now)
		res.Hops = append(res.Hops, HopResult{dstAS, v})
		if v.Dropped() {
			res.DroppedAt = dstAS
			return res
		}
	}
	res.Delivered = true
	return res
}
