package core

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

// TestForgeryResistanceV4 models the §VI-E1 brute-force MAC forgery
// attack on IPv4: an attacker guesses the 29-bit mark. The acceptance
// probability per guess is 2^-29, so tens of thousands of random
// guesses should essentially never succeed.
func TestForgeryResistanceV4(t *testing.T) {
	_, victim := peerVictimSetup(t)
	now := t0.Add(time.Minute)
	rng := rand.New(rand.NewSource(1))
	successes := 0
	const tries = 50_000
	for i := 0; i < tries; i++ {
		p := samplePacketV4()
		p.Src = netip.MustParseAddr("10.1.0.10") // spoofed peer source
		p.SetMark(rng.Uint32())
		if !victim.ProcessInbound(V4{p}, now).Dropped() {
			successes++
		}
	}
	// E[successes] = tries/2^29 ≈ 0.0001; even 2 would be astronomically
	// unlikely unless verification is broken.
	if successes > 1 {
		t.Fatalf("%d/%d forged marks accepted; expected ~%g", successes, tries, float64(tries)/(1<<29))
	}
}

// TestForgeryFactors checks the §VI-E1 arithmetic: mitigation factors
// of 2^29 (IPv4) and 2^32 (IPv6) per active key. (The paper states the
// expected number of packets per correct guess as 2^28/2^31, i.e. the
// mean of a geometric distribution with p = 2/2^29 during re-keying —
// here we verify the mark-space widths those numbers derive from.)
func TestForgeryFactors(t *testing.T) {
	if bits := (V4{samplePacketV4()}).MarkBits(); bits != 29 {
		t.Fatalf("IPv4 mark bits = %d", bits)
	}
	if bits := (V6{samplePacketV6()}).MarkBits(); bits != 32 {
		t.Fatalf("IPv6 mark bits = %d", bits)
	}
}

// TestRekeyDoublesAcceptance verifies the §VI-E1 note that during
// re-keying two keys are valid, doubling the attacker's per-guess
// acceptance probability (factor 2^27 instead of 2^28 for IPv4): a
// mark valid under either key is accepted.
func TestRekeyDoublesAcceptance(t *testing.T) {
	kt := NewKeyTable()
	oldKey := make([]byte, 16)
	newKey := make([]byte, 16)
	newKey[0] = 1
	kt.SetVerifyKey(2, oldKey)
	kt.SetVerifyKey(2, newKey) // old retained as previous

	stampOld := NewKeyTable()
	stampOld.SetStampKey(9, oldKey)
	stampNew := NewKeyTable()
	stampNew.SetStampKey(9, newKey)

	p := samplePacketV4()
	(V4{p}).Stamp(stampOld.StampKey(9))
	if ok, _, _ := kt.VerifyMark(2, V4{p}); !ok {
		t.Fatal("old-key mark rejected during rekey window")
	}
	(V4{p}).Stamp(stampNew.StampKey(9))
	if ok, _, _ := kt.VerifyMark(2, V4{p}); !ok {
		t.Fatal("new-key mark rejected during rekey window")
	}
}

// TestReplayRequiresIdenticalMsg checks §VI-E2: a captured mark only
// verifies for packets with the identical msg (immutable fields +
// first 8 payload bytes), so replays are detectable duplicates and any
// content change invalidates the mark.
func TestReplayRequiresIdenticalMsg(t *testing.T) {
	key := make([]byte, 16)
	kt := NewKeyTable()
	kt.SetStampKey(3, key)
	vt := NewKeyTable()
	vt.SetVerifyKey(1, key)

	p := samplePacketV4()
	p.Src = netip.MustParseAddr("10.1.0.10")
	(V4{p}).Stamp(kt.StampKey(3))
	mark := p.Mark()

	// Exact replay: verifies (and is detectable by the destination
	// host as a duplicate msg).
	replay := p.Clone()
	if ok, _, _ := vt.VerifyMark(1, V4{replay}); !ok {
		t.Fatal("exact replay should carry a valid mark")
	}

	// Replay with modified payload: fails.
	mod := p.Clone()
	mod.Payload[0] ^= 0xff
	mod.SetMark(mark)
	if ok, _, _ := vt.VerifyMark(1, V4{mod}); ok {
		t.Fatal("payload-modified replay accepted")
	}

	// Replay toward a different destination: fails.
	mod = p.Clone()
	mod.Dst = netip.MustParseAddr("10.3.0.99")
	mod.SetMark(mark)
	if ok, _, _ := vt.VerifyMark(1, V4{mod}); ok {
		t.Fatal("redirected replay accepted")
	}

	// Replay with different length: fails.
	mod = p.Clone()
	mod.Payload = append(mod.Payload, 0)
	mod.SetMark(mark)
	if ok, _, _ := vt.VerifyMark(1, V4{mod}); ok {
		t.Fatal("length-modified replay accepted")
	}
}

// TestKeyLeakageBlastRadius verifies §VI-E3: if AS j's keys leak, the
// damage is contained — renewing all of j's keys (RekeyAll + peers
// renewing toward j) restores security without touching other pairs.
func TestKeyLeakageBlastRadius(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1003, 1004)
	// Attacker learns key_{1001,1004} (stamping key of 1001 toward 1004).
	leaked := s.Routers[1001].Tables.Keys.StampKey(1004)
	if leaked == nil {
		t.Fatal("setup: no key")
	}
	// 1001 detects the leak and renews all its stamping keys; its peers
	// renew theirs toward 1001.
	s.Controllers[1001].RekeyAll()
	s.Controllers[1004].Rekey(1001)
	s.Controllers[1003].Rekey(1001)
	s.Settle()
	// Let the rekey overlap window expire so old keys die.
	s.Net.Sim.After(2*time.Minute, func() {})
	s.Settle()

	// A packet stamped with the leaked key no longer verifies at 1004.
	p := samplePacketV4()
	p.Src = netip.MustParseAddr("172.16.1.10")
	p.Dst = netip.MustParseAddr("172.16.4.10")
	(V4{p}).Stamp(leaked)
	if ok, _, _ := s.Routers[1004].Tables.Keys.VerifyMark(1001, V4{p}); ok {
		t.Fatal("leaked key still valid after renewal")
	}
	// Fresh traffic with the renewed keys works.
	q := samplePacketV4()
	q.Src = netip.MustParseAddr("172.16.1.10")
	q.Dst = netip.MustParseAddr("172.16.4.10")
	(V4{q}).Stamp(s.Routers[1001].Tables.Keys.StampKey(1004))
	if ok, _, _ := s.Routers[1004].Tables.Keys.VerifyMark(1001, V4{q}); !ok {
		t.Fatal("renewed keys do not verify")
	}
	// Unrelated pair (1003↔1004) unaffected throughout.
	r := samplePacketV4()
	r.Src = netip.MustParseAddr("172.16.3.10")
	r.Dst = netip.MustParseAddr("172.16.4.10")
	(V4{r}).Stamp(s.Routers[1003].Tables.Keys.StampKey(1004))
	if ok, _, _ := s.Routers[1004].Tables.Keys.VerifyMark(1003, V4{r}); !ok {
		t.Fatal("unrelated pair broken by containment")
	}
}

// TestMarkUniformity sanity-checks that truncated CMAC marks are close
// to uniform over coarse buckets — the property the 2^-29 forgery
// bound rests on.
func TestMarkUniformity(t *testing.T) {
	kt := NewKeyTable()
	kt.SetStampKey(3, make([]byte, 16))
	key := kt.StampKey(3)
	const n = 8192
	var buckets [8]int
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		p := samplePacketV4()
		p.Payload = make([]byte, 8)
		rng.Read(p.Payload)
		(V4{p}).Stamp(key)
		buckets[p.Mark()>>26]++ // top 3 bits of the 29-bit mark
	}
	want := n / 8
	for i, got := range buckets {
		if got < want/2 || got > want*2 {
			t.Fatalf("bucket %d = %d, want ≈%d (marks not uniform)", i, got, want)
		}
	}
}
