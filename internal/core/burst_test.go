package core

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"discs/internal/lpm"
	"discs/internal/packet"
	"discs/internal/topology"
)

func TestNextPow2(t *testing.T) {
	cases := []struct{ n, want uint64 }{
		{0, 1},
		{1, 1},
		{2, 2},
		{3, 4},
		{5, 8},
		{1 << 20, 1 << 20},
		{1<<20 + 1, 1 << 21},
		{1 << 63, 1 << 63},
		// Overflow boundary: anything above the largest power of two
		// clamps instead of looping forever (p would shift to 0).
		{1<<63 + 1, 1 << 63},
		{^uint64(0), 1 << 63},
	}
	for _, tc := range cases {
		if got := nextPow2(tc.n); got != tc.want {
			t.Errorf("nextPow2(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

var (
	burstKey3 = func() []byte { k := make([]byte, 16); k[0] = 3; return k }()
	burstKey4 = func() []byte { k := make([]byte, 16); k[0] = 4; return k }()
	burstKeyN = func() []byte { k := make([]byte, 16); k[0] = 9; return k }()
)

func burstPfx2AS(t *testing.T) *lpm.Table[topology.ASN] {
	t.Helper()
	tbl := testPfx2AS(t)
	for asn, p := range map[topology.ASN]string{
		1: "2001:db8:1::/48", 3: "2001:db8:3::/48",
	} {
		if err := tbl.Insert(netip.MustParsePrefix(p), asn); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// burstSetup builds a two-family scenario rich enough to drive every
// burst-path branch:
//
//	peer (AS1): DP filter + CDP stamp toward 10.3/16 (key AS3), CDP
//	stamp toward 10.4/16 (key AS4 — forces mid-burst key-run splits)
//	and toward 2001:db8:3::/48 (key AS3, v6 family splits).
//	victim (AS3): CDP verify on 10.3/16 and 2001:db8:3::/48 (strict),
//	CDP verify on 10.4/16 with an always-in-grace tolerance
//	(erase-only path, which consumes scrub-RNG draws).
func burstSetup(t *testing.T, mtu int) (peer, victim *BorderRouter) {
	t.Helper()
	v4strict := netip.MustParsePrefix("10.3.0.0/16")
	v4grace := netip.MustParsePrefix("10.4.0.0/16")
	v6strict := netip.MustParsePrefix("2001:db8:3::/48")

	pt := NewTables(1, burstPfx2AS(t))
	pt.In[TableOutDst].Install(v4strict, OpDPFilter, t0, time.Hour, 0)
	pt.In[TableOutDst].Install(v4strict, OpCDPStamp, t0, time.Hour, 0)
	pt.In[TableOutDst].Install(v4grace, OpCDPStamp, t0, time.Hour, 0)
	pt.In[TableOutDst].Install(v6strict, OpCDPStamp, t0, time.Hour, 0)
	pt.Keys.SetStampKey(3, burstKey3)
	pt.Keys.SetStampKey(4, burstKey4)
	peer = mustRouterOpts(RouterOptions{Tables: pt, Seed: 7, ExternalMTU: mtu,
		RouterAddr: netip.MustParseAddr("2001:db8:1::1")})

	vt := NewTables(3, burstPfx2AS(t))
	vt.In[TableInDst].Install(v4strict, OpCDPVerify, t0, time.Hour, 0)
	vt.In[TableInDst].Install(v6strict, OpCDPVerify, t0, time.Hour, 0)
	// Grace tolerance larger than the elapsed time at t0+1m keeps this
	// prefix permanently in its head tolerance: erase-only.
	vt.In[TableInDst].Install(v4grace, OpCDPVerify, t0, time.Hour, 30*time.Minute)
	vt.Keys.SetVerifyKey(1, burstKey3)
	victim = mustRouterOpts(RouterOptions{Tables: vt, Seed: 8})
	return peer, victim
}

// burstPacketMix generates a deterministic pseudo-random traffic mix
// hitting stamping, filtering, grace, MTU, fault and both-family paths.
func burstPacketMix(seed int64, n int) []MarkCarrier {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]MarkCarrier, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0: // genuine v4 toward the strict prefix
			p := samplePacketV4()
			p.Src = netip.MustParseAddr(fmt.Sprintf("10.1.%d.%d", rng.Intn(4), 1+rng.Intn(250)))
			p.Dst = netip.MustParseAddr(fmt.Sprintf("10.3.0.%d", 1+rng.Intn(250)))
			pkts = append(pkts, V4{p})
		case 1: // spoofed v4 (non-local source, DP filter drop)
			p := samplePacketV4()
			p.Src = netip.MustParseAddr(fmt.Sprintf("10.2.0.%d", 1+rng.Intn(250)))
			pkts = append(pkts, V4{p})
		case 2: // v4 toward the graced prefix (stamped with key AS4)
			p := samplePacketV4()
			p.Src = netip.MustParseAddr(fmt.Sprintf("10.1.1.%d", 1+rng.Intn(250)))
			p.Dst = netip.MustParseAddr(fmt.Sprintf("10.4.0.%d", 1+rng.Intn(250)))
			pkts = append(pkts, V4{p})
		case 3: // v4 toward uncovered space: pass untouched both ways
			p := samplePacketV4()
			p.Src = netip.MustParseAddr(fmt.Sprintf("10.1.2.%d", 1+rng.Intn(250)))
			p.Dst = netip.MustParseAddr(fmt.Sprintf("10.9.0.%d", 1+rng.Intn(250)))
			pkts = append(pkts, V4{p})
		case 4: // unknown source AS
			p := samplePacketV4()
			p.Src = netip.MustParseAddr(fmt.Sprintf("192.168.0.%d", 1+rng.Intn(250)))
			p.Dst = netip.MustParseAddr("10.3.0.9")
			pkts = append(pkts, V4{p})
		case 5: // genuine v6
			p := samplePacketV6()
			p.Src = netip.MustParseAddr(fmt.Sprintf("2001:db8:1::%d", 1+rng.Intn(250)))
			p.Dst = netip.MustParseAddr(fmt.Sprintf("2001:db8:3::%d", 1+rng.Intn(250)))
			pkts = append(pkts, V6{p})
		case 6: // v6 already carrying a (bogus) DISCS option: outbound
			// stamp fails after computing its MAC; inbound fails verify.
			p := samplePacketV6()
			p.Src = netip.MustParseAddr(fmt.Sprintf("2001:db8:1::%d", 1+rng.Intn(250)))
			p.Dst = netip.MustParseAddr(fmt.Sprintf("2001:db8:3::%d", 1+rng.Intn(250)))
			if err := p.StampV6(0xdeadbeef); err != nil {
				panic(err)
			}
			pkts = append(pkts, V6{p})
		default: // oversized v6 (too-big drop when an MTU is set)
			p := samplePacketV6()
			p.Src = netip.MustParseAddr(fmt.Sprintf("2001:db8:1::%d", 1+rng.Intn(250)))
			p.Dst = netip.MustParseAddr(fmt.Sprintf("2001:db8:3::%d", 1+rng.Intn(250)))
			p.Payload = make([]byte, 1400)
			pkts = append(pkts, V6{p})
		}
	}
	return pkts
}

func marshalCarrier(t *testing.T, c MarkCarrier) []byte {
	t.Helper()
	var b []byte
	var err error
	switch w := c.(type) {
	case V4:
		b, err = w.P.Marshal()
	case V6:
		b, err = w.P.Marshal()
	default:
		t.Fatalf("unknown carrier %T", c)
	}
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runBurstDifferential drives the same traffic through a serial pair
// and a batch pair and requires bit-identical verdicts, packet bytes,
// stats and alarm-sample sequences. mutate, when non-nil, runs between
// the outbound and inbound halves on both victims (rekey windows,
// mark corruption, alarm mode).
func runBurstDifferential(t *testing.T, seed int64, n, mtu int, mutate func(r *BorderRouter, pkts []MarkCarrier)) {
	t.Helper()
	serialPeer, serialVictim := burstSetup(t, mtu)
	batchPeer, batchVictim := burstSetup(t, mtu)
	now := t0.Add(time.Minute)

	var serialAlarms, batchAlarms []AlarmSample
	serialVictim.OnAlarm = func(a AlarmSample) { serialAlarms = append(serialAlarms, a) }
	batchVictim.OnAlarm = func(a AlarmSample) { batchAlarms = append(batchAlarms, a) }
	var serialICMP, batchICMP int
	serialPeer.OnPacketTooBig = func(*packet.IPv6) { serialICMP++ }
	batchPeer.OnPacketTooBig = func(*packet.IPv6) { batchICMP++ }

	serialPkts := burstPacketMix(seed, n)
	batchPkts := burstPacketMix(seed, n)

	// Outbound.
	serialVerdicts := make([]Verdict, 0, n)
	for _, p := range serialPkts {
		serialVerdicts = append(serialVerdicts, serialPeer.ProcessOutbound(p, now))
	}
	batchVerdicts := batchPeer.ProcessOutboundBatch(batchPkts, now, nil)
	for i := range serialVerdicts {
		if serialVerdicts[i] != batchVerdicts[i] {
			t.Fatalf("outbound pkt %d: serial=%v batch=%v", i, serialVerdicts[i], batchVerdicts[i])
		}
	}
	if s, b := serialPeer.Stats(), batchPeer.Stats(); s != b {
		t.Fatalf("outbound stats diverge:\nserial %+v\nbatch  %+v", s, b)
	}
	if serialICMP != batchICMP {
		t.Fatalf("ICMP too-big callbacks: serial %d, batch %d", serialICMP, batchICMP)
	}

	if mutate != nil {
		mutate(serialVictim, serialPkts)
		mutate(batchVictim, batchPkts)
	}

	// Inbound: surviving packets only.
	var serialIn, batchIn []MarkCarrier
	for i, v := range serialVerdicts {
		if !v.Dropped() {
			serialIn = append(serialIn, serialPkts[i])
			batchIn = append(batchIn, batchPkts[i])
		}
	}
	sv := make([]Verdict, 0, len(serialIn))
	for _, p := range serialIn {
		sv = append(sv, serialVictim.ProcessInbound(p, now))
	}
	bv := batchVictim.ProcessInboundBatch(batchIn, now, nil)
	for i := range sv {
		if sv[i] != bv[i] {
			t.Fatalf("inbound pkt %d: serial=%v batch=%v", i, sv[i], bv[i])
		}
	}
	if s, b := serialVictim.Stats(), batchVictim.Stats(); s != b {
		t.Fatalf("inbound stats diverge:\nserial %+v\nbatch  %+v", s, b)
	}
	if len(serialAlarms) != len(batchAlarms) {
		t.Fatalf("alarm samples: serial %d, batch %d", len(serialAlarms), len(batchAlarms))
	}
	for i := range serialAlarms {
		if serialAlarms[i] != batchAlarms[i] {
			t.Fatalf("alarm sample %d: serial %+v, batch %+v", i, serialAlarms[i], batchAlarms[i])
		}
	}
	// Packet bytes must match bit for bit — marks, erasures (which
	// consume the same RNG draws in the same order) and v6 options.
	for i := range serialIn {
		sb := marshalCarrier(t, serialIn[i])
		bb := marshalCarrier(t, batchIn[i])
		if string(sb) != string(bb) {
			t.Fatalf("inbound pkt %d bytes diverge after processing", i)
		}
	}
}

// The burst path must be observationally identical to serial
// processing across families, key splits, grace windows and MTU drops.
func TestBurstMatchesSerialMixed(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runBurstDifferential(t, seed, 256, 0, nil)
		})
	}
}

// Same, with an external MTU forcing too-big drops and ICMP errors.
func TestBurstMatchesSerialMTU(t *testing.T) {
	runBurstDifferential(t, 5, 256, 1280, nil)
}

// Same, in alarm mode: failures pass with alarm samples whose sequence
// (including SrcAS resolution) must match serial exactly.
func TestBurstMatchesSerialAlarmMode(t *testing.T) {
	runBurstDifferential(t, 6, 256, 0, func(r *BorderRouter, pkts []MarkCarrier) {
		r.SetAlarmMode(true)
		// Corrupt some marks so the alarm path actually fires.
		for i, p := range pkts {
			if w, ok := p.(V4); ok && i%3 == 0 {
				w.P.SetMark(w.P.Mark() ^ 0x15555)
			}
		}
	})
}

// Same, inside a rekey window: the victim rotates to a new current key
// while in-flight marks carry the old one, exercising the burst path's
// previous-key retry (two MACs per packet, like serial).
func TestBurstMatchesSerialRekeyWindow(t *testing.T) {
	runBurstDifferential(t, 7, 256, 0, func(r *BorderRouter, pkts []MarkCarrier) {
		r.Tables.Keys.SetVerifyKey(1, burstKeyN)
	})
}

// Fault-shaped inputs: corrupted marks without alarm mode (drops), on
// top of the mix's pre-stamped v6 duplicates and unknown sources.
func TestBurstMatchesSerialCorruptedMarks(t *testing.T) {
	runBurstDifferential(t, 8, 256, 0, func(r *BorderRouter, pkts []MarkCarrier) {
		for i, p := range pkts {
			switch w := p.(type) {
			case V4:
				if i%2 == 0 {
					w.P.SetMark(w.P.Mark() ^ 1)
				}
			case V6:
				if i%5 == 0 {
					w.P.UnstampV6() // arrive unmarked: fails with zero MACs
				}
			}
		}
	})
}

// A dedicated pipeline must be reusable across routers and bursts: the
// caches are keyed by key/table pointers, so switching routers between
// bursts cannot leak state. (This is the netsim usage pattern.)
func TestBurstPipelineReuseAcrossRouters(t *testing.T) {
	peerA, victimA := burstSetup(t, 0)
	peerB, victimB := burstSetup(t, 0)
	serialPeer, serialVictim := burstSetup(t, 0)
	now := t0.Add(time.Minute)
	bp := NewBurstPipeline()

	for round := 0; round < 4; round++ {
		peer, victim := peerA, victimA
		if round%2 == 1 {
			peer, victim = peerB, victimB
		}
		pkts := burstPacketMix(int64(100+round), 64)
		ref := burstPacketMix(int64(100+round), 64)

		got := bp.Outbound(peer, pkts, now, nil)
		want := make([]Verdict, 0, len(ref))
		for _, p := range ref {
			want = append(want, serialPeer.ProcessOutbound(p, now))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d outbound pkt %d: pipeline=%v serial=%v", round, i, got[i], want[i])
			}
		}
		var in, refIn []MarkCarrier
		for i, v := range want {
			if !v.Dropped() {
				in = append(in, pkts[i])
				refIn = append(refIn, ref[i])
			}
		}
		got = bp.Inbound(victim, in, now, nil)
		want = want[:0]
		for _, p := range refIn {
			want = append(want, serialVictim.ProcessInbound(p, now))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d inbound pkt %d: pipeline=%v serial=%v", round, i, got[i], want[i])
			}
		}
	}
}

// Idle tables (no active invocation anywhere) must take the burst fast
// path and still count processed packets.
func TestBurstIdleFastPath(t *testing.T) {
	tb := NewTables(1, burstPfx2AS(t))
	r := testRouter(tb, 1)
	pkts := burstPacketMix(9, 32)
	out := r.ProcessOutboundBatch(pkts, t0.Add(time.Minute), nil)
	in := r.ProcessInboundBatch(pkts, t0.Add(time.Minute), nil)
	for i := range pkts {
		if out[i] != VerdictPass || in[i] != VerdictPass {
			t.Fatalf("pkt %d: out=%v in=%v, want pass/pass", i, out[i], in[i])
		}
	}
	if s := r.Stats(); s.OutProcessed != 32 || s.InProcessed != 32 || s.MACsComputed != 0 {
		t.Fatalf("stats = %+v", s)
	}
}
