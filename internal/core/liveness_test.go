package core

import (
	"testing"
	"time"

	"discs/internal/topology"
)

// fastLiveness tightens the liveness knobs so tests can crash and
// recover controllers in seconds of simulated time.
func fastLiveness(cfg *Config) {
	cfg.HeartbeatInterval = 2 * time.Second
	cfg.DeadAfterMisses = 3
	cfg.ReconnectInterval = 5 * time.Second
	// Keep loss recovery (retry) faster than death declaration (6s), or
	// a single lost frame during a quiet period reads as a crash.
	cfg.RetryInterval = 2 * time.Second
	cfg.RetryJitter = time.Second
}

// TestDeadPeerDetectionAndPurge: a crashed controller goes silent; the
// survivor must detect it via missed heartbeats, declare it dead, and
// purge its key state so routers stop stamping toward the black hole.
func TestDeadPeerDetectionAndPurge(t *testing.T) {
	s := testInternet(t)
	fastLiveness(&s.cfg)
	deploy(t, s, 1001, 1004)
	c1 := s.Controllers[1001]
	if s.Routers[1001].Tables.Keys.StampKey(1004) == nil {
		t.Fatal("no stamp key before the crash")
	}

	if err := s.Crash(1004); err != nil {
		t.Fatal(err)
	}
	// Heartbeats every 2s, dead after 3 misses: death lands around
	// t+8s; stop before the first reconnect probe (armed for ≥ t+13s)
	// moves the FSM on.
	s.Net.Sim.Run(s.Net.Sim.Now() + 10*time.Second)
	if st, _ := c1.PeerStatusOf(1004); st != PeerDead {
		t.Fatalf("AS1001→AS1004 status %v, want dead", st)
	}
	if c1.Stats().Get(MetricCtrlPeersDeclaredDead) != 1 {
		t.Fatalf("PeersDeclaredDead = %d, want 1", c1.Stats().Get(MetricCtrlPeersDeclaredDead))
	}
	// Probing may later move the FSM to requested, but the peer stays
	// un-established and the purge sticks while it is down.
	s.Net.Sim.Run(s.Net.Sim.Now() + 20*time.Second)
	if s.Routers[1001].Tables.Keys.StampKey(1004) != nil {
		t.Fatal("stamp key toward the dead peer not purged")
	}
	if s.Routers[1001].Tables.Keys.HasVerifyKey(1004) {
		t.Fatal("verify key for the dead peer not purged")
	}
	// The survivor itself must not think it is dead to anyone else: a
	// one-peer deployment has nothing else to check, but Peers() must
	// no longer list the dead one.
	if peers := c1.Peers(); len(peers) != 0 {
		t.Fatalf("dead peer still listed as established: %v", peers)
	}
}

// TestRestartResumesSession: after a controller crash + restart, the
// peering must re-establish over the abbreviated resumption handshake
// (no new full handshakes), and keys must work again.
func TestRestartResumesSession(t *testing.T) {
	s := testInternet(t)
	fastLiveness(&s.cfg)
	deploy(t, s, 1001, 1004)
	c1, c4 := s.Controllers[1001], s.Controllers[1004]
	fullBefore := c1.Stats().Get(MetricCtrlHandshakesInitiated) + c4.Stats().Get(MetricCtrlHandshakesInitiated)

	if err := s.Crash(1004); err != nil {
		t.Fatal(err)
	}
	s.Net.Sim.Run(s.Net.Sim.Now() + 30*time.Second)
	if c1.Stats().Get(MetricCtrlPeersDeclaredDead) != 1 {
		t.Fatalf("survivor never declared the crashed peer dead (stat %d)", c1.Stats().Get(MetricCtrlPeersDeclaredDead))
	}

	if err := s.Restart(1004); err != nil {
		t.Fatal(err)
	}
	// Restart replays Ads immediately; the reconnect probe on the
	// survivor side fires within ReconnectInterval*1.5. Run past both.
	s.Net.Sim.Run(s.Net.Sim.Now() + 30*time.Second)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}

	if st, _ := c1.PeerStatusOf(1004); st != PeerEstablished {
		t.Fatalf("AS1001→AS1004 status %v after restart", st)
	}
	if st, _ := c4.PeerStatusOf(1001); st != PeerEstablished {
		t.Fatalf("AS1004→AS1001 status %v after restart", st)
	}
	if !c1.KeysReadyWith(1004) || !c4.KeysReadyWith(1001) {
		t.Fatal("keys not re-deployed after restart")
	}
	if got := c1.Stats().Get(MetricCtrlHandshakesInitiated) + c4.Stats().Get(MetricCtrlHandshakesInitiated); got != fullBefore {
		t.Fatalf("full handshakes went %d→%d; recovery must use resumption", fullBefore, got)
	}
	if c1.Stats().Get(MetricCtrlResumesInitiated)+c4.Stats().Get(MetricCtrlResumesInitiated) == 0 {
		t.Fatal("no abbreviated handshakes initiated during recovery")
	}
	if c1.Stats().Get(MetricCtrlResumesResponded)+c4.Stats().Get(MetricCtrlResumesResponded) == 0 {
		t.Fatal("no abbreviated handshakes responded during recovery")
	}
}

// TestResumeFallbackToFullHandshake: when the remote side has lost the
// cached secret, a resumption attempt must be rejected and
// transparently fall back to the full handshake, refreshing the cache
// on both ends.
func TestResumeFallbackToFullHandshake(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004)
	c1, c4 := s.Controllers[1001], s.Controllers[1004]

	// Simulate a session-cache wipe at AS1004 and an expired transport
	// session at AS1001: the next exchange must start with a resumption
	// offer that AS1004 cannot honour.
	delete(c4.resumeCache, topology.ASN(1001))
	p := c1.peers[1004]
	p.out = nil
	fullBefore := c1.Stats().Get(MetricCtrlHandshakesInitiated) + c4.Stats().Get(MetricCtrlHandshakesInitiated)

	if err := c1.Rekey(1004); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}

	if c1.Stats().Get(MetricCtrlResumeFallbacks) != 1 {
		t.Fatalf("ResumeFallbacks = %d, want 1", c1.Stats().Get(MetricCtrlResumeFallbacks))
	}
	if got := c1.Stats().Get(MetricCtrlHandshakesInitiated) + c4.Stats().Get(MetricCtrlHandshakesInitiated); got != fullBefore+1 {
		t.Fatalf("full handshakes went %d→%d, want exactly one fallback handshake", fullBefore, got)
	}
	if !c1.KeysReadyWith(1004) {
		t.Fatal("rekey did not complete over the fallback handshake")
	}
	// Both ends must agree on a fresh secret for the next resumption.
	if c1.resumeCache[1004] != c4.resumeCache[1001] {
		t.Fatal("resume caches diverged after fallback")
	}
}

// TestRetryDelayJitter: retry delays must land in
// [RetryInterval, RetryInterval+RetryJitter] and actually vary (the
// anti-request-storm satellite), deterministically per seed.
func TestRetryDelayJitter(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001)
	c := s.Controllers[1001]
	c.cfg.RetryInterval = 5 * time.Second
	c.cfg.RetryJitter = 2 * time.Second

	varied := false
	var prev time.Duration
	for i := 0; i < 50; i++ {
		d := c.retryDelay()
		if d < 5*time.Second || d > 7*time.Second {
			t.Fatalf("retry delay %v outside [5s, 7s]", d)
		}
		if i > 0 && d != prev {
			varied = true
		}
		prev = d
	}
	if !varied {
		t.Fatal("retry delay never varied — jitter inert")
	}

	c.cfg.RetryJitter = 0
	if d := c.retryDelay(); d != 5*time.Second {
		t.Fatalf("zero jitter gave %v, want exactly 5s", d)
	}
}

// TestHeartbeatsDoNotPreventSettle: the default config has heartbeats
// enabled; a deployed system must still settle (background events must
// not keep RunAll alive) and the simulated clock must not race ahead.
func TestHeartbeatsDoNotPreventSettle(t *testing.T) {
	s := testInternet(t)
	deploy(t, s, 1001, 1004) // deploy() settles — if this returns, RunAll terminated
	before := s.Net.Sim.Now()
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if s.Net.Sim.Now() != before {
		t.Fatalf("settling an idle system advanced the clock %v→%v", before, s.Net.Sim.Now())
	}
	// Heartbeats do run when something else drives the clock forward.
	c1 := s.Controllers[1001]
	s.Net.Sim.Run(s.Net.Sim.Now() + 2*c1.cfg.HeartbeatInterval)
	if c1.Stats().Get(MetricCtrlHeartbeatsSent) == 0 {
		t.Fatal("no heartbeats sent while the clock advanced")
	}
	if st, _ := c1.PeerStatusOf(1004); st != PeerEstablished {
		t.Fatalf("healthy peer degraded to %v under heartbeats", st)
	}
}
