package core

import (
	"net/netip"
	"testing"
	"time"

	"discs/internal/packet"
)

// samplePacketV4 builds a packet from AS2's space to AS3's space (see
// testPfx2AS).
func samplePacketV4() *packet.IPv4 {
	return &packet.IPv4{
		TTL:      64,
		Protocol: packet.ProtoUDP,
		Src:      netip.MustParseAddr("10.2.0.10"),
		Dst:      netip.MustParseAddr("10.3.0.10"),
		Payload:  []byte("payload-bytes"),
	}
}

func samplePacketV6() *packet.IPv6 {
	return &packet.IPv6{
		HopLimit: 64,
		Proto:    packet.ProtoUDP,
		Src:      netip.MustParseAddr("2001:db8:2::10"),
		Dst:      netip.MustParseAddr("2001:db8:3::10"),
		Payload:  []byte("payload-bytes"),
	}
}

// mustRouterOpts builds a router from options; test setup is static,
// so an options error is a harness bug worth a panic.
func mustRouterOpts(o RouterOptions) *BorderRouter {
	r, err := NewBorderRouterWithOptions(o)
	if err != nil {
		panic(err)
	}
	return r
}

// testRouter keeps the brevity of the removed positional constructor
// for the many tests that need nothing but tables and a seed.
func testRouter(tables *Tables, seed int64) *BorderRouter {
	return mustRouterOpts(RouterOptions{Tables: tables, Seed: seed})
}

// peerVictimSetup builds the canonical CDP scenario:
//
//	AS1 (peer, runs DP+CDP stamping) — AS3 (victim, verifies)
//
// Returns the peer router, the victim router, and the shared key.
func peerVictimSetup(t *testing.T) (peer, victim *BorderRouter) {
	t.Helper()
	key := make([]byte, 16)
	key[3] = 0x42

	peerTables := NewTables(1, testPfx2AS(t))
	v := netip.MustParsePrefix("10.3.0.0/16")
	peerTables.In[TableOutDst].Install(v, OpDPFilter, t0, time.Hour, 0)
	peerTables.In[TableOutDst].Install(v, OpCDPStamp, t0, time.Hour, 0)
	peerTables.Keys.SetStampKey(3, key)
	peer = testRouter(peerTables, 1)

	victimTables := NewTables(3, testPfx2AS(t))
	victimTables.In[TableInDst].Install(v, OpCDPVerify, t0, time.Hour, 0)
	victimTables.Keys.SetVerifyKey(1, key)
	victim = testRouter(victimTables, 2)
	return peer, victim
}

func TestCDPEndToEndV4(t *testing.T) {
	peer, victim := peerVictimSetup(t)
	now := t0.Add(time.Minute)

	// A genuine packet from AS1's space to the victim.
	p := samplePacketV4()
	p.Src = netip.MustParseAddr("10.1.0.10")
	if v := peer.ProcessOutbound(V4{p}, now); v != VerdictPassStamped {
		t.Fatalf("outbound verdict = %v", v)
	}
	if v := victim.ProcessInbound(V4{p}, now); v != VerdictPassVerified {
		t.Fatalf("inbound verdict = %v", v)
	}
	if victim.Stats().InVerified != 1 || peer.Stats().OutStamped != 1 {
		t.Fatalf("stats: %+v / %+v", peer.Stats(), victim.Stats())
	}
}

func TestCDPEndToEndV6(t *testing.T) {
	key := make([]byte, 16)
	pfx := testPfx2AS(t)
	pfx.Insert(netip.MustParsePrefix("2001:db8:1::/48"), 1)
	pfx.Insert(netip.MustParsePrefix("2001:db8:3::/48"), 3)
	v6pfx := netip.MustParsePrefix("2001:db8:3::/48")

	peerTables := NewTables(1, pfx)
	peerTables.In[TableOutDst].Install(v6pfx, OpCDPStamp, t0, time.Hour, 0)
	peerTables.Keys.SetStampKey(3, key)
	peer := testRouter(peerTables, 1)

	victimTables := NewTables(3, pfx)
	victimTables.In[TableInDst].Install(v6pfx, OpCDPVerify, t0, time.Hour, 0)
	victimTables.Keys.SetVerifyKey(1, key)
	victim := testRouter(victimTables, 2)

	now := t0.Add(time.Minute)
	p := samplePacketV6()
	p.Src = netip.MustParseAddr("2001:db8:1::10")
	if v := peer.ProcessOutbound(V6{p}, now); v != VerdictPassStamped {
		t.Fatalf("outbound verdict = %v", v)
	}
	if _, ok := p.MarkV6(); !ok {
		t.Fatal("no DISCS option after stamping")
	}
	if v := victim.ProcessInbound(V6{p}, now); v != VerdictPassVerified {
		t.Fatalf("inbound verdict = %v", v)
	}
	// The mark must be erased after verification.
	if _, ok := p.MarkV6(); ok {
		t.Fatal("DISCS option not erased after verification")
	}
}

func TestDPDropsSpoofedAtPeer(t *testing.T) {
	peer, _ := peerVictimSetup(t)
	now := t0.Add(time.Minute)
	// Spoofed source (AS2's space, not local to AS1) targeting victim.
	p := samplePacketV4()
	if v := peer.ProcessOutbound(V4{p}, now); v != VerdictDrop {
		t.Fatalf("verdict = %v, want drop", v)
	}
	if peer.Stats().OutDropped != 1 {
		t.Fatalf("stats = %+v", peer.Stats())
	}
}

func TestVictimDropsUnstampedFromPeer(t *testing.T) {
	// d-DDoS traffic spoofing a peer's source arrives at the victim
	// without a valid mark: dropped by CDP-verify. This is the
	// capability MEF lacks (§I): the victim can tell spoofed from
	// genuine for collaborator sources.
	_, victim := peerVictimSetup(t)
	now := t0.Add(time.Minute)
	p := samplePacketV4()
	p.Src = netip.MustParseAddr("10.1.0.10") // claims to be from peer AS1
	if v := victim.ProcessInbound(V4{p}, now); v != VerdictDrop {
		t.Fatalf("verdict = %v, want drop", v)
	}
	if victim.Stats().InVerifyFail != 1 || victim.Stats().InDropped != 1 {
		t.Fatalf("stats = %+v", victim.Stats())
	}
}

func TestVictimPassesNonPeerTraffic(t *testing.T) {
	// CDP-verify is conditional on src ∈ peer (Table I): traffic from
	// AS4 (no key) passes unverified — no false positives on
	// non-collaborator traffic.
	_, victim := peerVictimSetup(t)
	now := t0.Add(time.Minute)
	p := samplePacketV4()
	p.Src = netip.MustParseAddr("10.4.0.10")
	if v := victim.ProcessInbound(V4{p}, now); v != VerdictPass {
		t.Fatalf("verdict = %v, want pass", v)
	}
}

func TestWrongKeyFailsVerification(t *testing.T) {
	peer, victim := peerVictimSetup(t)
	// Victim has a different key for AS1.
	bad := make([]byte, 16)
	bad[0] = 0x99
	victim.Tables.Keys.SetVerifyKey(1, bad)
	victim.Tables.Keys.DropPreviousVerifyKey(1)
	now := t0.Add(time.Minute)
	p := samplePacketV4()
	p.Src = netip.MustParseAddr("10.1.0.10")
	peer.ProcessOutbound(V4{p}, now)
	if v := victim.ProcessInbound(V4{p}, now); v != VerdictDrop {
		t.Fatalf("verdict = %v, want drop with mismatched keys", v)
	}
}

func TestGraceIntervalErasesWithoutDropping(t *testing.T) {
	key := make([]byte, 16)
	v := netip.MustParsePrefix("10.3.0.0/16")
	victimTables := NewTables(3, testPfx2AS(t))
	victimTables.In[TableInDst].Install(v, OpCDPVerify, t0, time.Hour, 30*time.Second)
	victimTables.Keys.SetVerifyKey(1, key)
	victim := testRouter(victimTables, 2)

	// Unstamped packet arrives during the head grace interval: passes,
	// mark fields erased, no drop (§IV-E1 tolerance).
	p := samplePacketV4()
	p.Src = netip.MustParseAddr("10.1.0.10")
	p.SetMark(0x1234567)
	if verdict := victim.ProcessInbound(V4{p}, t0.Add(5*time.Second)); verdict != VerdictPass {
		t.Fatalf("verdict = %v", verdict)
	}
	if victim.Stats().InErasedOnly != 1 || victim.Stats().InDropped != 0 {
		t.Fatalf("stats = %+v", victim.Stats())
	}
	if p.Mark() == 0x1234567 {
		t.Fatal("mark not erased during grace")
	}
}

func TestSPDropsReflectionRequests(t *testing.T) {
	// s-DDoS: agents in AS1 send requests with the victim's (AS3)
	// source address toward reflectors. SP at AS1's border drops them.
	tables := NewTables(1, testPfx2AS(t))
	v := netip.MustParsePrefix("10.3.0.0/16")
	tables.In[TableOutSrc].Install(v, OpSPFilter, t0, time.Hour, 0)
	r := testRouter(tables, 1)
	now := t0.Add(time.Minute)

	p := samplePacketV4()
	p.Src = netip.MustParseAddr("10.3.0.10") // victim's space
	p.Dst = netip.MustParseAddr("10.4.0.99") // innocent reflector
	if verdict := r.ProcessOutbound(V4{p}, now); verdict != VerdictDrop {
		t.Fatalf("verdict = %v, want drop", verdict)
	}
}

func TestCSPVerifyAtPeer(t *testing.T) {
	key := make([]byte, 16)
	key[7] = 7
	v := netip.MustParsePrefix("10.3.0.0/16")

	// Victim AS3 stamps its own outbound toward peer AS2.
	victimTables := NewTables(3, testPfx2AS(t))
	victimTables.In[TableOutSrc].Install(v, OpCSPStamp, t0, time.Hour, 0)
	victimTables.Keys.SetStampKey(2, key)
	victim := testRouter(victimTables, 1)

	// Peer AS2 verifies inbound traffic claiming the victim's source.
	peerTables := NewTables(2, testPfx2AS(t))
	peerTables.In[TableInSrc].Install(v, OpCSPVerify, t0, time.Hour, 0)
	peerTables.Keys.SetVerifyKey(3, key)
	peer := testRouter(peerTables, 2)

	now := t0.Add(time.Minute)

	// Genuine victim request to the peer: stamped, verifies.
	p := samplePacketV4()
	p.Src = netip.MustParseAddr("10.3.0.10")
	p.Dst = netip.MustParseAddr("10.2.0.99")
	if verdict := victim.ProcessOutbound(V4{p}, now); verdict != VerdictPassStamped {
		t.Fatalf("victim outbound = %v", verdict)
	}
	if verdict := peer.ProcessInbound(V4{p}, now); verdict != VerdictPassVerified {
		t.Fatalf("peer inbound = %v", verdict)
	}

	// Spoofed request (agent elsewhere using victim's source): no valid
	// mark, dropped at the reflector-side peer.
	q := samplePacketV4()
	q.Src = netip.MustParseAddr("10.3.0.10")
	q.Dst = netip.MustParseAddr("10.2.0.99")
	if verdict := peer.ProcessInbound(V4{q}, now); verdict != VerdictDrop {
		t.Fatalf("spoofed inbound = %v, want drop", verdict)
	}
}

func TestAlarmModePassesAndReports(t *testing.T) {
	_, victim := peerVictimSetup(t)
	victim.SetAlarmMode(true)
	var samples []AlarmSample
	victim.OnAlarm = func(s AlarmSample) { samples = append(samples, s) }
	now := t0.Add(time.Minute)

	p := samplePacketV4()
	p.Src = netip.MustParseAddr("10.1.0.10") // spoofed peer source, no mark
	if v := victim.ProcessInbound(V4{p}, now); v != VerdictPassAlarm {
		t.Fatalf("verdict = %v, want pass+alarm", v)
	}
	if len(samples) != 1 || samples[0].SrcAS != 1 {
		t.Fatalf("samples = %+v", samples)
	}
	if victim.Stats().InAlarmed != 1 || victim.Stats().InDropped != 0 {
		t.Fatalf("stats = %+v", victim.Stats())
	}
}

func TestNoProcessingWithoutInvocation(t *testing.T) {
	// On-demand principle: with empty function tables everything
	// passes and no crypto runs.
	tables := NewTables(1, testPfx2AS(t))
	tables.Keys.SetStampKey(3, make([]byte, 16))
	r := testRouter(tables, 1)
	now := t0.Add(time.Minute)

	p := samplePacketV4()
	if v := r.ProcessOutbound(V4{p}, now); v != VerdictPass {
		t.Fatalf("outbound = %v", v)
	}
	if v := r.ProcessInbound(V4{p}, now); v != VerdictPass {
		t.Fatalf("inbound = %v", v)
	}
	if r.Stats().MACsComputed != 0 {
		t.Fatal("crypto ran without invocation")
	}
}

func TestExpiredInvocationStopsProcessing(t *testing.T) {
	peer, victim := peerVictimSetup(t)
	after := t0.Add(2 * time.Hour) // both 1h windows expired
	p := samplePacketV4()          // spoofed source
	if v := peer.ProcessOutbound(V4{p}, after); v != VerdictPass {
		t.Fatalf("peer verdict after expiry = %v", v)
	}
	q := samplePacketV4()
	q.Src = netip.MustParseAddr("10.1.0.10")
	if v := victim.ProcessInbound(V4{q}, after); v != VerdictPass {
		t.Fatalf("victim verdict after expiry = %v", v)
	}
}

func TestICMPScrubCounters(t *testing.T) {
	tables := NewTables(1, testPfx2AS(t))
	r := testRouter(tables, 1)
	orig := samplePacketV4()
	orig.Src = netip.MustParseAddr("10.1.0.10")
	orig.SetMark(0xabcde)
	icmp, err := packet.ICMPv4TimeExceeded(netip.MustParseAddr("10.4.0.1"), orig)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := icmp.Marshal()
	parsed, _ := packet.ParseIPv4(b)
	if !r.ScrubInboundICMP(parsed) {
		t.Fatal("scrub failed")
	}
	if r.Stats().ICMPScrubbed != 1 {
		t.Fatalf("stats = %+v", r.Stats())
	}
	// Non-ICMP passes through untouched.
	if r.ScrubInboundICMP(samplePacketV4()) {
		t.Fatal("scrubbed a non-ICMP packet")
	}
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictPass: "pass", VerdictPassStamped: "pass+stamped",
		VerdictPassVerified: "pass+verified", VerdictPassAlarm: "pass+alarm",
		VerdictDrop: "drop",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
	if !VerdictDrop.Dropped() || VerdictPass.Dropped() {
		t.Error("Dropped() wrong")
	}
}
