package core_test

import (
	"fmt"

	"discs/internal/core"
)

// Parse an operator's invocation triple (§IV-E: who, which, how long).
func ExampleParseInvocation() {
	inv, err := core.ParseInvocation("192.0.2.0/24+198.51.100.0/24:CDP:2h:alarm")
	if err != nil {
		panic(err)
	}
	fmt.Println(inv.Function, inv.Duration, inv.Alarm, len(inv.Prefixes))
	// Output:
	// CDP 2h0m0s true 2
}

// Table I, programmatically: where each function's operations execute.
func ExamplePeerOps() {
	for _, f := range []core.Function{core.DP, core.CDP, core.SP, core.CSP} {
		for table, ops := range core.PeerOps(f) {
			fmt.Printf("%v: peers run %v on %v\n", f, ops, table)
		}
	}
	// Unordered output:
	// DP: peers run DP-filter on Out-Dst
	// CDP: peers run CDP-stamp on Out-Dst
	// SP: peers run SP-filter on Out-Src
	// CSP: peers run CSP-verify on In-Src
}
