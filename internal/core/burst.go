package core

import (
	"net/netip"
	"sync"
	"time"

	"discs/internal/cmac"
	"discs/internal/packet"
	"discs/internal/topology"
)

// BurstPipeline holds the per-worker state of the fused burst data
// path: CMAC lane scratch, the first-block cache, the tuple-generation
// memos and the packed message/verdict staging buffers. A pipeline is
// not safe for concurrent use — give each forwarding goroutine its own
// (NewBurstPipeline) or let the batch entry points borrow one from the
// shared pool. State is keyed by table and key *pointers*, so one
// pipeline may serve any number of routers in turn; snapshot swaps
// (key rotation, table rebuilds) invalidate the caches naturally
// because the new snapshot's pointers no longer match.
//
// The fused paths are observationally identical to per-packet
// processing: verdict vectors, packet bytes (including the order of
// random scrub-bit draws) and counter totals are bit-for-bit the same
// as calling ProcessOutbound/ProcessInbound in a loop against a frozen
// snapshot. The difference is purely mechanical: one snapshot load and
// one counter flush per burst, memoized LPM/key lookups across packets
// with shared flow structure, and CMAC block scheduling that keeps the
// AES unit full (cmac.SumBurst) instead of stalling per message.
type BurstPipeline struct {
	memo   tupleMemo
	blocks cmac.BlockCache
	lanes  cmac.BurstScratch
	s      cmac.Scratch

	// Staging for the current same-(key,family) run of CMAC work.
	flat  []byte   // packed mark messages
	idx   []int    // packet index per message
	marks []uint32 // SumBurst output

	// Deferred inbound state, indexed by packet position.
	action []uint8
	srcAS  []topology.ASN
	vks    []*verifyKeys
}

// NewBurstPipeline creates a pipeline for a dedicated forwarding
// worker. Callers that process bursts from a single goroutine (a
// netsim border, a pinned line-card loop) should hold one of these and
// call Outbound/Inbound directly; the Process*Batch entry points
// otherwise borrow an equivalent pipeline from a shared pool.
func NewBurstPipeline() *BurstPipeline {
	return &BurstPipeline{}
}

// pipelinePool backs the batch entry points. Pipelines are keyed by
// nothing — caches tag entries with key/table pointers — so reuse
// across routers is safe and keeps the caches warm.
var pipelinePool = sync.Pool{New: func() any { return NewBurstPipeline() }}

// Inbound deferred actions (pass 1 classifies, pass 2 applies in
// packet order so the scrub-bit RNG sequence matches serial exactly).
const (
	actPass      uint8 = iota // final verdict VerdictPass, nothing deferred
	actSerial                 // unknown carrier: full serial path in pass 2
	actEraseOnly              // grace interval: erase, no enforcement
	actPending                // CMAC scheduled, compare outstanding
	actValid                  // verified: erase + VerdictPassVerified
	actInvalid                // failed: drop or alarm
)

// Outbound runs the fused outbound path over pkts against one coherent
// table snapshot, appending one verdict per packet to dst (pass a
// reused buffer to stay allocation-free) and returning it.
func (bp *BurstPipeline) Outbound(r *BorderRouter, pkts []MarkCarrier, now time.Time, dst []Verdict) []Verdict {
	st := r.Tables.loadOut()
	nowN := now.UnixNano()
	base := len(dst)
	var d routerDeltas
	if st.src.idleAt(nowN) && st.dst.idleAt(nowN) {
		d.outProcessed = uint64(len(pkts))
		for range pkts {
			dst = append(dst, VerdictPass)
		}
		d.flush(&r.m)
		return bp.sampleBurst(r, pkts, dst, base)
	}
	bp.memo.beginBurst()
	bp.flat, bp.idx = bp.flat[:0], bp.idx[:0]
	var runKey *cmac.CMAC
	var runV6 bool
	for i, p := range pkts {
		var src, dstA netip.Addr
		var isV6 bool
		switch w := p.(type) {
		case V4:
			src, dstA = w.P.Src, w.P.Dst
		case V6:
			src, dstA, isV6 = w.P.Src, w.P.Dst, true
		default:
			// Unknown carrier: flush staged work, take the serial path.
			bp.flushOut(r, runKey, runV6, pkts, dst[base:], &d)
			runKey = nil
			dst = append(dst, r.processOutbound(&st, p, nowN, &d, &bp.s))
			continue
		}
		d.outProcessed++
		tup := r.Tables.genOutTupleMemo(&st, &bp.memo, src, dstA, nowN)
		if tup.Drop {
			d.outDropped++
			dst = append(dst, VerdictDrop)
			continue
		}
		if !tup.Stamp || tup.Key == nil {
			dst = append(dst, VerdictPass)
			continue
		}
		if isV6 && r.ExternalMTU > 0 {
			w := p.(V6)
			if w.P.WireLen()+w.P.StampOverheadV6() > r.ExternalMTU {
				d.outTooBig++
				if r.OnPacketTooBig != nil {
					if icmp, err := packet.NewICMPv6PacketTooBig(r.RouterAddr, w.P, uint32(r.ExternalMTU-8)); err == nil {
						r.OnPacketTooBig(icmp)
					}
				}
				dst = append(dst, VerdictDrop)
				continue
			}
		}
		if tup.Key != runKey || isV6 != runV6 {
			bp.flushOut(r, runKey, runV6, pkts, dst[base:], &d)
			runKey, runV6 = tup.Key, isV6
		}
		if isV6 {
			m := p.(V6).P.Msg()
			bp.flat = append(bp.flat, m[:]...)
		} else {
			m := p.(V4).P.Msg()
			bp.flat = append(bp.flat, m[:]...)
		}
		bp.idx = append(bp.idx, i)
		// Placeholder; flushOut downgrades IPv6 stamp failures.
		dst = append(dst, VerdictPassStamped)
	}
	bp.flushOut(r, runKey, runV6, pkts, dst[base:], &d)
	d.flush(&r.m)
	return bp.sampleBurst(r, pkts, dst, base)
}

// flushOut computes the staged run's marks with one interleaved
// SumBurst call and applies them to the packets.
func (bp *BurstPipeline) flushOut(r *BorderRouter, key *cmac.CMAC, isV6 bool, pkts []MarkCarrier, vd []Verdict, d *routerDeltas) {
	n := len(bp.idx)
	if n == 0 {
		return
	}
	if cap(bp.marks) < n {
		bp.marks = make([]uint32, n)
	}
	marks := bp.marks[:n]
	if isV6 {
		key.SumBurst32(bp.flat, packet.MsgLenV6, marks, &bp.lanes, &bp.blocks)
		for j, i := range bp.idx {
			d.macsComputed++
			if err := pkts[i].(V6).P.StampV6(marks[j]); err != nil {
				// Packet cannot carry a mark: pass unstamped, mirroring
				// the serial path (the MAC was still computed).
				vd[i] = VerdictPass
				continue
			}
			d.outStamped++
		}
	} else {
		key.SumBurst29(bp.flat, packet.MsgLenV4, marks, &bp.lanes, &bp.blocks)
		for j, i := range bp.idx {
			pkts[i].(V4).P.SetMark(marks[j])
			d.macsComputed++
			d.outStamped++
		}
	}
	bp.flat, bp.idx = bp.flat[:0], bp.idx[:0]
}

// Inbound is the inbound counterpart of Outbound: classify and batch
// the CMAC work in pass 1, then apply erasures, alarms and drops in
// strict packet order in pass 2 so every observable side effect (RNG
// draw order, OnAlarm sequence, counters) matches serial processing.
func (bp *BurstPipeline) Inbound(r *BorderRouter, pkts []MarkCarrier, now time.Time, dst []Verdict) []Verdict {
	st := r.Tables.loadIn()
	nowN := now.UnixNano()
	base := len(dst)
	var d routerDeltas
	if st.src.idleAt(nowN) && st.dst.idleAt(nowN) {
		d.inProcessed = uint64(len(pkts))
		for range pkts {
			dst = append(dst, VerdictPass)
		}
		d.flush(&r.m)
		return bp.sampleBurst(r, pkts, dst, base)
	}
	n := len(pkts)
	if cap(bp.action) < n {
		bp.action = make([]uint8, n)
		bp.srcAS = make([]topology.ASN, n)
		bp.vks = make([]*verifyKeys, n)
	}
	bp.action = bp.action[:n]
	bp.srcAS = bp.srcAS[:n]
	bp.vks = bp.vks[:n]
	bp.memo.beginBurst()
	bp.flat, bp.idx = bp.flat[:0], bp.idx[:0]
	var runKey *cmac.CMAC
	var runV6 bool

	// Pass 1: tuple generation and CMAC scheduling.
	for i, p := range pkts {
		dst = append(dst, VerdictPass)
		var src, dstA netip.Addr
		var isV6 bool
		switch w := p.(type) {
		case V4:
			src, dstA = w.P.Src, w.P.Dst
		case V6:
			src, dstA, isV6 = w.P.Src, w.P.Dst, true
		default:
			bp.action[i] = actSerial
			continue
		}
		d.inProcessed++
		tup := r.Tables.genInTupleMemo(&st, &bp.memo, src, dstA, nowN)
		switch {
		case !tup.Verify:
			bp.action[i] = actPass
			continue
		case tup.EraseOnly:
			bp.action[i] = actEraseOnly
			continue
		case !tup.SrcKnown:
			bp.action[i] = actPass
			continue
		}
		vk := st.keys.verify[tup.SrcAS]
		if vk == nil {
			bp.action[i] = actPass
			continue
		}
		bp.srcAS[i], bp.vks[i] = tup.SrcAS, vk
		if isV6 {
			if _, ok := p.(V6).P.MarkV6(); !ok {
				// Missing DISCS option: fails without computing a MAC.
				bp.action[i] = actInvalid
				continue
			}
		}
		if vk.current != runKey || isV6 != runV6 {
			bp.flushIn(runKey, runV6, pkts, &d)
			runKey, runV6 = vk.current, isV6
		}
		if isV6 {
			m := p.(V6).P.Msg()
			bp.flat = append(bp.flat, m[:]...)
		} else {
			m := p.(V4).P.Msg()
			bp.flat = append(bp.flat, m[:]...)
		}
		bp.idx = append(bp.idx, i)
		bp.action[i] = actPending
	}
	bp.flushIn(runKey, runV6, pkts, &d)

	// Pass 2: apply outcomes in packet order.
	vd := dst[base:]
	for i, p := range pkts {
		switch bp.action[i] {
		case actPass:
			// vd[i] is already VerdictPass.
		case actSerial:
			vd[i] = r.processInbound(&st, p, nowN, &d, &bp.s)
		case actEraseOnly:
			p.Erase(r.randomBits())
			d.inErasedOnly++
		case actValid:
			p.Erase(r.randomBits())
			d.inVerified++
			vd[i] = VerdictPassVerified
		case actInvalid:
			d.inVerifyFail++
			if r.alarmMode.Load() {
				d.inAlarmed++
				if r.OnAlarm != nil {
					r.OnAlarm(AlarmSample{
						Src:   p.SrcAddr(),
						Dst:   p.DstAddr(),
						SrcAS: bp.srcAS[i],
						When:  time.Unix(0, nowN).UTC(),
					})
				}
				p.Erase(r.randomBits())
				vd[i] = VerdictPassAlarm
			} else {
				d.inDropped++
				vd[i] = VerdictDrop
			}
		}
		bp.vks[i] = nil // don't pin retired key snapshots
	}
	d.flush(&r.m)
	return bp.sampleBurst(r, pkts, dst, base)
}

// flushIn computes the staged run's expected marks and resolves each
// pending packet to actValid/actInvalid, retrying with the previous
// key during a rekey window exactly as the serial path does.
func (bp *BurstPipeline) flushIn(key *cmac.CMAC, isV6 bool, pkts []MarkCarrier, d *routerDeltas) {
	n := len(bp.idx)
	if n == 0 {
		return
	}
	if cap(bp.marks) < n {
		bp.marks = make([]uint32, n)
	}
	marks := bp.marks[:n]
	if isV6 {
		key.SumBurst32(bp.flat, packet.MsgLenV6, marks, &bp.lanes, &bp.blocks)
	} else {
		key.SumBurst29(bp.flat, packet.MsgLenV4, marks, &bp.lanes, &bp.blocks)
	}
	for j, i := range bp.idx {
		d.macsComputed++
		var ok bool
		if isV6 {
			w := pkts[i].(V6)
			want, _ := w.P.MarkV6()
			ok = marks[j] == want
			if !ok {
				if prev := bp.vks[i].previous; prev != nil {
					d.macsComputed++
					m := w.P.Msg()
					ok = prev.Sum32Cached(m[:], &bp.s, &bp.blocks) == want
				}
			}
		} else {
			w := pkts[i].(V4)
			want := w.P.Mark() & (1<<29 - 1)
			ok = marks[j] == want
			if !ok {
				if prev := bp.vks[i].previous; prev != nil {
					d.macsComputed++
					m := w.P.Msg()
					ok = prev.Sum29Cached(m[:], &bp.s, &bp.blocks) == want
				}
			}
		}
		if ok {
			bp.action[i] = actValid
		} else {
			bp.action[i] = actInvalid
		}
	}
	bp.flat, bp.idx = bp.flat[:0], bp.idx[:0]
}

// sampleBurst emits the sampled-trace events for a finished burst in
// packet order; with tracing off it is a single nil check, and the
// emitted sequence matches per-packet processing (same tick stream).
func (bp *BurstPipeline) sampleBurst(r *BorderRouter, pkts []MarkCarrier, dst []Verdict, base int) []Verdict {
	if r.trace != nil {
		for i, p := range pkts {
			r.maybeSample(p, dst[base+i])
		}
	}
	return dst
}
