// Checkpoint/restore seam for the parallel engine: per-lane clocks,
// creation counters (the oseq source, i.e. the deterministic
// tie-breaker), foreground high-water marks and fault-stream
// positions. The same quiescence contract as the serial simulator
// applies — foreground-pending lanes refuse to checkpoint, queued
// background events are dropped with crash semantics and re-armed by
// the restart path.
package parsim

import (
	"fmt"

	"discs/internal/netsim"
	"discs/internal/snapcodec"
)

// Checkpoint serializes the engine's resumable state. All lanes must
// be foreground-quiescent (run RunAll first); pending background
// events are not serialized.
func (e *Engine) Checkpoint(w *snapcodec.Writer) error {
	if e.inEpoch {
		return netsim.ErrNotQuiescent
	}
	lanes := append([]*lane{e.global}, e.lanes...)
	for _, ln := range lanes {
		if ln.fg > 0 {
			return netsim.ErrNotQuiescent
		}
	}
	w.Uvarint(uint64(e.shards))
	w.Varint(e.faultSeed)
	for _, ln := range lanes {
		w.Duration(ln.now)
		w.Uvarint(ln.ctr)
		w.Duration(ln.fgMax)
		w.Uvarint(ln.src.Draws())
	}
	return w.Err()
}

// RestoreCheckpoint loads lane state written by Checkpoint into an
// engine built with the same shard count (the worker count is free to
// differ — determinism does not depend on it).
func (e *Engine) RestoreCheckpoint(r *snapcodec.Reader) error {
	shards := int(r.Uvarint())
	seed := r.Varint()
	if err := r.Err(); err != nil {
		return err
	}
	if shards != e.shards {
		return fmt.Errorf("%w: image has %d shards, engine has %d",
			netsim.ErrStateMismatch, shards, e.shards)
	}
	e.SeedFaults(seed)
	for _, ln := range append([]*lane{e.global}, e.lanes...) {
		ln.now = r.Duration()
		ln.ctr = r.Uvarint()
		ln.fgMax = r.Duration()
		ln.src.Skip(r.Uvarint())
		if err := r.Err(); err != nil {
			return err
		}
	}
	return nil
}
