// Package parsim executes a netsim event graph across worker
// goroutines under conservative (lookahead-window) synchronization,
// while producing results bit-identical to running the same engine
// with one worker.
//
// # Model
//
// Nodes are partitioned into a fixed number of logical shards (set at
// construction, independent of the worker count — see
// topology.PartitionCones for the topology-aware assignment). Each
// shard is a lane: it owns an event heap, a clock, a fault-RNG stream
// and an event-creation counter. A sixteenth-plus-one lane — the
// global lane — holds driver-scheduled events (flap/partition
// schedules, interval recorders, grace timers); it executes on the
// coordinator goroutine with every shard parked, so global events can
// safely touch cross-shard state (link status, registry snapshots).
//
// Simulation advances in epochs. Let tS be the earliest pending shard
// event and tG the earliest pending global event. If tG <= tS the
// coordinator runs the global event. Otherwise all lanes execute their
// events with timestamp strictly below
//
//	windowEnd = min(tS + lookahead, tG, deadline+1)
//
// in parallel, where lookahead is the minimum delay of any link whose
// endpoints live in different shards. A message sent at time t over a
// cross-shard link arrives no earlier than t + lookahead >= windowEnd,
// so cross-shard deliveries are buffered in per-(src,dst) SPSC queues
// during the epoch and merged into the destination heaps at the next
// barrier — always before the destination's clock reaches them.
//
// # Determinism
//
// Every event carries the key (at, origin, originSeq): origin is the
// lane that created it (global = -1, ordered first) and originSeq that
// lane's monotonic creation counter. Lane heaps order by this key, so
// each lane executes a deterministic sequence, which makes its
// creation counter — and therefore every key it assigns —
// deterministic by induction. Crucially the key is fixed at creation,
// not at delivery, so the total order does not depend on the epoch
// window structure or on which worker ran which lane: runs with 1 and
// N workers are bit-identical. Per-lane fault RNG streams are seeded
// from the fault seed and the lane id and drawn in lane-execution
// order, so injected faults are equally reproducible (though they
// differ from the serial Simulator's single-stream schedule — see
// DESIGN.md §11).
//
// # Serial fallback
//
// If any cross-shard link has zero delay there is no usable lookahead;
// the engine then executes the merged key order one event at a time on
// the coordinator. Because the key order is window-independent this
// produces the same results a parallel run would, just without the
// parallelism. workers <= 1 keeps the epoch structure and simply runs
// the lanes inline.
package parsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"discs/internal/netsim"
	"discs/internal/obs"
)

// DefaultShards is the default number of logical shards. It is part of
// the deterministic inputs of a run: changing it changes event
// interleavings (changing Workers does not).
const DefaultShards = 16

// Metric names published by the engine. Everything under "parsim." is
// diagnostic: epoch and per-shard counts are deterministic, stall and
// per-worker attribution are wall-clock/scheduling dependent — so
// differential tests compare snapshots with the whole parsim.*
// namespace stripped.
const (
	MetricEpochs  = "parsim.epochs"
	MetricStallNS = "parsim.stall_ns"
)

// MetricWorkerEvents names the executed-event counter for one worker.
func MetricWorkerEvents(w int) string { return fmt.Sprintf("parsim.worker%d.events", w) }

// MetricShardEvents names the executed-event counter for one shard.
func MetricShardEvents(s int) string { return fmt.Sprintf("parsim.shard%d.events", s) }

const (
	maxTime = netsim.Time(math.MaxInt64)
	// defaultStride bounds epoch windows when no cross-shard links
	// exist (lanes fully independent, any window is safe) so that
	// self-re-arming background events cannot spin a lane forever.
	defaultStride = 100 * time.Millisecond
	// eventCap mirrors the serial RunAll livelock guard.
	eventCap = 50_000_000
)

// pevent is a pooled scheduled callback. Its identity for ordering is
// (at, origin, oseq), assigned at creation and never dependent on the
// epoch structure.
type pevent struct {
	at     netsim.Time
	origin int32  // creating lane: -1 global, 0..S-1 shards
	oseq   uint64 // creating lane's counter at creation
	gen    uint64 // pooled-reuse generation (Timer guard)
	idx    int32  // heap position; -1 popped/free, -2 in a cross buffer
	bg     bool
	fn     func()
	lane   *lane // destination lane (owner of the queue slot)
}

const (
	idxFree     = -1
	idxBuffered = -2
)

// pqueue is a min-heap of pevents ordered by the creation key.
type pqueue []*pevent

func (q pqueue) Len() int { return len(q) }
func (q pqueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.oseq < b.oseq
}
func (q pqueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = int32(i)
	q[j].idx = int32(j)
}
func (q *pqueue) Push(x any) {
	e := x.(*pevent)
	e.idx = int32(len(*q))
	*q = append(*q, e)
}
func (q *pqueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = idxFree
	*q = old[:n-1]
	return e
}

// lane is one shard's event state (or the global lane, id -1). During
// an epoch a lane is touched by exactly one worker; between epochs
// only the coordinator touches it.
type lane struct {
	id    int32
	now   netsim.Time
	ctr   uint64 // creation counter, source of oseq
	queue pqueue
	free  []*pevent
	fg    int // queued foreground events
	dead  int // lazily-cancelled events still in queue
	// fgMax is the latest timestamp any foreground event was ever
	// scheduled at on this lane (monotone; cancellations do not lower
	// it). RunAll clamps epoch windows to the maximum across lanes so
	// background events far beyond the last foreground event do not
	// run — mirroring the serial RunAll's stop-at-quiescence.
	fgMax netsim.Time
	inBG  bool
	// rng draws from src, a counting source, so checkpoints can record
	// the exact per-lane fault stream position (see checkpoint.go).
	rng *rand.Rand
	src *netsim.CountingSource
	// executed counts events run on this lane (deterministic).
	executed uint64
	err      error
}

func (ln *lane) alloc() *pevent {
	if n := len(ln.free); n > 0 {
		e := ln.free[n-1]
		ln.free[n-1] = nil
		ln.free = ln.free[:n-1]
		return e
	}
	return &pevent{idx: idxFree}
}

func (ln *lane) recycle(e *pevent) {
	e.gen++
	e.fn = nil
	e.idx = idxFree
	ln.free = append(ln.free, e)
}

// head returns the timestamp of the earliest live event, discarding
// lazily-cancelled ones that surfaced. Coordinator-only.
func (ln *lane) head() (netsim.Time, bool) {
	for ln.queue.Len() > 0 {
		e := ln.queue[0]
		if e.fn != nil {
			return e.at, true
		}
		heap.Pop(&ln.queue)
		ln.dead--
		ln.recycle(e)
	}
	return 0, false
}

// compact rebuilds the heap without dead events once they outnumber
// the live half (same policy as the serial Simulator).
func (ln *lane) compact() {
	if ln.dead <= len(ln.queue)/2 || len(ln.queue) < 64 {
		return
	}
	live := ln.queue[:0]
	for _, e := range ln.queue {
		if e.fn == nil {
			ln.recycle(e)
			continue
		}
		live = append(live, e)
	}
	for i := len(live); i < len(ln.queue); i++ {
		ln.queue[i] = nil
	}
	ln.queue = live
	ln.dead = 0
	heap.Init(&ln.queue)
}

// runWindow executes the lane's events with at < end in key order,
// stopping after maxEvents. It returns the number executed. Called by
// the lane's current executor (a worker mid-epoch, or the coordinator).
func (ln *lane) runWindow(e *Engine, end netsim.Time, maxEvents int) int {
	ln.compact()
	executed := 0
	trace := e.trace
	for ln.queue.Len() > 0 {
		ev := ln.queue[0]
		if ev.fn == nil {
			heap.Pop(&ln.queue)
			ln.dead--
			ln.recycle(ev)
			continue
		}
		if ev.at >= end {
			break
		}
		if executed >= maxEvents {
			if maxEvents >= eventCap {
				ln.err = fmt.Errorf("parsim: lane %d exceeded %d events in one window (livelock?)", ln.id, maxEvents)
			}
			break
		}
		heap.Pop(&ln.queue)
		fn := ev.fn
		if !ev.bg {
			ln.fg--
		}
		ln.now = ev.at
		bg := ev.bg
		if trace != nil {
			trace.Emit(obs.Event{
				Kind:   netsim.TraceEventKind,
				At:     int64(ev.at),
				AS:     uint32(ev.origin + 1),
				Serial: ev.oseq,
			})
		}
		// Recycle before running: fn may schedule onto this lane and
		// legitimately reuse the slot under a fresh generation.
		ln.recycle(ev)
		ln.inBG = bg
		fn()
		ln.inBG = false
		executed++
	}
	ln.executed += uint64(executed)
	if executed > 0 {
		e.events.Add(uint64(executed))
	}
	return executed
}

// xbuf carries events created by one source lane for one destination
// lane during an epoch. Only the source's worker appends; only the
// coordinator drains, after the barrier.
type xbuf struct {
	msgs []*pevent
}

// Options configures an Engine.
type Options struct {
	// Shards is the number of logical shards (default DefaultShards).
	// Part of the deterministic inputs: two runs must use the same
	// value to be comparable.
	Shards int
	// Workers is the number of worker goroutines (default
	// GOMAXPROCS). Never affects results, only wall-clock speed.
	Workers int
}

// Engine is a conservative parallel event core. Create one with New —
// which installs it as the simulator's Backend — after the nodes that
// exist so far have their shards assigned, and before any events are
// scheduled.
type Engine struct {
	sim     *netsim.Simulator
	shards  int
	workers int
	// lookahead is the minimum cross-shard link delay; <0 means no
	// cross-shard links seen yet (unbounded windows, clamped by
	// defaultStride). merged flips on a zero-delay cross-shard link.
	lookahead netsim.Time
	merged    bool
	// faultSeed is the base seed the per-lane fault streams derive
	// from (SeedFaults; default 1), recorded for checkpointing.
	faultSeed int64
	global    *lane
	lanes     []*lane
	cross     [][]xbuf // [src][dst]

	// Epoch machinery. inEpoch is written by the coordinator strictly
	// before releasing / after collecting workers (the work/done
	// channels provide the happens-before edges).
	inEpoch   bool
	windowEnd netsim.Time
	cursor    atomic.Int64
	work      chan struct{}
	done      chan struct{}
	epochBusy []time.Duration // per-worker busy time in the last epoch
	closed    bool

	// Metrics (registered on the simulator's registry).
	events       *obs.Counter // netsim.events
	queueDepth   *obs.Gauge   // netsim.queue_depth
	epochs       *obs.Counter
	stall        *obs.Counter
	workerEvents []*obs.Counter
	shardEvents  []*obs.Counter
	shardPub     []uint64 // last published per-shard executed counts
	trace        *obs.Tracer
}

var _ netsim.Backend = (*Engine)(nil)
var _ netsim.Canceller = (*Engine)(nil)

// New builds an engine over sim and installs it as sim's Backend.
// Shard assignments (Node.SetShard) for already-created nodes must be
// final: the cross-shard lookahead is derived from them and from the
// links present now (links added later feed in via Connected).
func New(sim *netsim.Simulator, opts Options) (*Engine, error) {
	shards := opts.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	e := &Engine{
		sim:       sim,
		shards:    shards,
		workers:   workers,
		lookahead: -1,
		faultSeed: 1,
		global:    &lane{id: -1},
		lanes:     make([]*lane, shards),
		cross:     make([][]xbuf, shards),
		epochBusy: make([]time.Duration, workers),
	}
	e.global.seed(1)
	for i := range e.lanes {
		e.lanes[i] = &lane{id: int32(i)}
		e.lanes[i].seed(1)
		e.cross[i] = make([]xbuf, shards)
	}
	reg := sim.Registry()
	e.events = reg.Counter(netsim.MetricEvents)
	e.queueDepth = reg.Gauge(netsim.MetricQueueDepth)
	e.epochs = reg.Counter(MetricEpochs)
	e.stall = reg.Counter(MetricStallNS)
	e.workerEvents = make([]*obs.Counter, workers)
	for i := range e.workerEvents {
		e.workerEvents[i] = reg.Counter(MetricWorkerEvents(i))
	}
	e.shardEvents = make([]*obs.Counter, shards)
	e.shardPub = make([]uint64, shards)
	for i := range e.shardEvents {
		e.shardEvents[i] = reg.Counter(MetricShardEvents(i))
	}
	for _, l := range sim.Links() {
		e.Connected(l)
	}
	if workers > 1 {
		e.work = make(chan struct{}, workers)
		e.done = make(chan struct{}, workers)
		for w := 0; w < workers; w++ {
			go e.worker(w, e.work)
		}
	}
	sim.SetBackend(e)
	return e, nil
}

// laneRNG derives the per-lane fault stream from the base seed via a
// splitmix64 step, so neighbouring lane seeds are decorrelated.
func laneRNG(seed int64, id int32) (*rand.Rand, *netsim.CountingSource) {
	z := uint64(seed) + uint64(id+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	src := netsim.NewCountingSource(int64(z ^ (z >> 31)))
	return rand.New(src), src
}

// seedLane installs the fault stream derived from (seed, lane id).
func (ln *lane) seed(seed int64) {
	ln.rng, ln.src = laneRNG(seed, ln.id)
}

// Workers returns the number of worker goroutines.
func (e *Engine) Workers() int { return e.workers }

// Shards returns the number of logical shards.
func (e *Engine) Shards() int { return e.shards }

// Merged reports whether the engine fell back to merged serial
// execution (a zero-delay cross-shard link exists).
func (e *Engine) Merged() bool { return e.merged }

// Lookahead returns the current cross-shard lookahead bound (negative
// when no cross-shard links exist).
func (e *Engine) Lookahead() netsim.Time { return e.lookahead }

// Close stops the worker goroutines. The engine must be parked (no
// Run/RunAll in progress). Further Run calls fall back to inline lane
// execution; results are unchanged.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.work != nil {
		close(e.work)
		e.work = nil
		e.workers = 1
	}
}

func (e *Engine) laneFor(n *netsim.Node) *lane {
	if n == nil {
		return e.global
	}
	s := n.Shard()
	if s < 0 || s >= e.shards {
		s = ((s % e.shards) + e.shards) % e.shards
	}
	return e.lanes[s]
}

// --- netsim.Backend ---

// Now returns the clock of ctx's lane (the driver clock for nil).
func (e *Engine) Now(ctx *netsim.Node) netsim.Time { return e.laneFor(ctx).now }

// InBackground reports whether ctx's lane is executing a background
// event.
func (e *Engine) InBackground(ctx *netsim.Node) bool { return e.laneFor(ctx).inBG }

// FaultRNG returns ctx's lane-local fault stream.
func (e *Engine) FaultRNG(ctx *netsim.Node) *rand.Rand { return e.laneFor(ctx).rng }

// SeedFaults reseeds every lane's fault stream from seed.
func (e *Engine) SeedFaults(seed int64) {
	e.faultSeed = seed
	e.global.seed(seed)
	for _, ln := range e.lanes {
		ln.seed(seed)
	}
}

// Schedule arms fn at the absolute time at, on behalf of src (nil =
// driver), for dst (nil = driver-level housekeeping: the global lane
// when scheduled by the driver, src's own lane when scheduled from a
// node's event).
func (e *Engine) Schedule(src, dst *netsim.Node, at netsim.Time, fn func(), background bool) (netsim.Timer, error) {
	srcLane := e.laneFor(src)
	var dstLane *lane
	switch {
	case dst != nil:
		dstLane = e.laneFor(dst)
	case src != nil:
		// A node-context schedule with no destination stays on its own
		// lane: running the closure there preserves the lane's event
		// order and needs no cross-lane coordination.
		dstLane = srcLane
	default:
		dstLane = e.global
	}
	if e.inEpoch {
		if src == nil {
			panic("parsim: driver-context Schedule while an epoch is executing")
		}
		if at < srcLane.now {
			return netsim.Timer{}, fmt.Errorf("parsim: schedule at %v before now %v", at, srcLane.now)
		}
		ev := srcLane.alloc()
		ev.at, ev.origin, ev.oseq, ev.bg, ev.fn, ev.lane = at, srcLane.id, srcLane.ctr, background, fn, dstLane
		srcLane.ctr++
		if dstLane == srcLane {
			heap.Push(&srcLane.queue, ev)
			if !background {
				srcLane.fg++
				srcLane.fgMax = maxT(srcLane.fgMax, at)
			}
		} else {
			// Cross-shard: buffer for the barrier merge. The key was
			// assigned above, so merge timing cannot affect ordering.
			// (Its fg count and fgMax reach the destination at drain.)
			ev.idx = idxBuffered
			e.cross[srcLane.id][dstLane.id].msgs = append(e.cross[srcLane.id][dstLane.id].msgs, ev)
		}
		return netsim.NewBackendTimer(e, ev, ev.gen), nil
	}
	// Parked: the coordinator (or driver) owns every lane; push
	// directly. The creation key comes from the destination lane.
	if at < dstLane.now {
		return netsim.Timer{}, fmt.Errorf("parsim: schedule at %v before now %v", at, dstLane.now)
	}
	ev := dstLane.alloc()
	ev.at, ev.origin, ev.oseq, ev.bg, ev.fn, ev.lane = at, dstLane.id, dstLane.ctr, background, fn, dstLane
	dstLane.ctr++
	heap.Push(&dstLane.queue, ev)
	if !background {
		dstLane.fg++
		dstLane.fgMax = maxT(dstLane.fgMax, at)
	}
	return netsim.NewBackendTimer(e, ev, ev.gen), nil
}

// CancelEvent implements netsim.Canceller. It must run from the
// destination lane's execution context (or parked), which is the
// documented Timer.Stop contract.
func (e *Engine) CancelEvent(h any, gen uint64, eager bool) bool {
	ev := h.(*pevent)
	if ev.gen != gen || ev.fn == nil {
		return false
	}
	ln := ev.lane
	if ev.idx == idxBuffered {
		// Still in a cross buffer: never counted in the destination's
		// fg, so just mark it; the drain discards it.
		ev.fn = nil
		return true
	}
	if !ev.bg {
		ln.fg--
	}
	if eager && ev.idx >= 0 {
		heap.Remove(&ln.queue, int(ev.idx))
		ln.recycle(ev)
		return true
	}
	ev.fn = nil
	ln.dead++
	return true
}

// Reserved pre-sizes per-lane queues for a known topology.
func (e *Engine) Reserved(nodes, links int) {
	per := (nodes + links) / e.shards
	for _, ln := range e.lanes {
		if cap(ln.queue) < per {
			grown := make(pqueue, len(ln.queue), per)
			copy(grown, ln.queue)
			ln.queue = grown
		}
	}
}

// Connected refreshes the lookahead bound with a new link. A
// zero-delay cross-shard link forces merged (serial) execution.
func (e *Engine) Connected(l *netsim.Link) {
	a, b := l.Endpoints()
	if e.laneFor(a) == e.laneFor(b) {
		return
	}
	if e.lookahead < 0 || l.Delay < e.lookahead {
		e.lookahead = l.Delay
	}
	if l.Delay <= 0 {
		e.merged = true
	}
}

// QueueLen returns pending events across all lanes (driver-only).
func (e *Engine) QueueLen() int {
	n := e.global.queue.Len()
	for _, ln := range e.lanes {
		n += ln.queue.Len()
	}
	return n
}

// Step executes the single earliest pending event in merged key order
// on the coordinator. Because the order is window-independent, mixing
// Step with Run/RunAll cannot change results.
func (e *Engine) Step() bool {
	e.trace = e.sim.ExecTrace()
	ln := e.minLane()
	if ln == nil {
		return false
	}
	at, _ := ln.head()
	if ln != e.global {
		// Epoch semantics for shard events, so keys match Run/RunAll.
		e.inEpoch = true
		ln.runWindow(e, at+1, 1)
		e.inEpoch = false
		e.drainCross()
	} else {
		ln.runWindow(e, at+1, 1)
	}
	e.publish()
	return true
}

// minLane returns the lane holding the globally least (at, origin,
// oseq) key, or nil when everything is drained.
func (e *Engine) minLane() *lane {
	var best *lane
	var bestEv *pevent
	consider := func(ln *lane) {
		if _, ok := ln.head(); !ok {
			return
		}
		ev := ln.queue[0]
		if best == nil || less(ev, bestEv) {
			best, bestEv = ln, ev
		}
	}
	consider(e.global)
	for _, ln := range e.lanes {
		consider(ln)
	}
	return best
}

func less(a, b *pevent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.oseq < b.oseq
}

// Run executes events (foreground and background) with at <= deadline,
// then advances every clock to deadline, mirroring the serial
// Simulator.Run.
func (e *Engine) Run(deadline netsim.Time) int {
	n, err := e.loop(deadline, false)
	if err != nil {
		panic(err)
	}
	e.global.now = maxT(e.global.now, deadline)
	for _, ln := range e.lanes {
		ln.now = maxT(ln.now, deadline)
	}
	e.publish()
	return n
}

// RunAll executes events in key order until no foreground events
// remain. Termination is checked at epoch barriers, so background
// events within the final window may still run (bounded by the
// lookahead; deterministic for a given scenario).
func (e *Engine) RunAll() (int, error) {
	n, err := e.loop(maxTime, true)
	e.publish()
	return n, err
}

func maxT(a, b netsim.Time) netsim.Time {
	if a > b {
		return a
	}
	return b
}

func (e *Engine) totalFG() int {
	n := e.global.fg
	for _, ln := range e.lanes {
		n += ln.fg
	}
	return n
}

// drainCross merges buffered cross-shard events into their destination
// heaps. Coordinator-only, workers parked. Keys were assigned at
// creation, so push order is irrelevant.
func (e *Engine) drainCross() {
	for s := range e.cross {
		for d := range e.cross[s] {
			buf := &e.cross[s][d]
			if len(buf.msgs) == 0 {
				continue
			}
			ln := e.lanes[d]
			for i, ev := range buf.msgs {
				buf.msgs[i] = nil
				if ev.fn == nil {
					// Cancelled while buffered.
					ln.recycle(ev)
					continue
				}
				heap.Push(&ln.queue, ev)
				if !ev.bg {
					ln.fg++
					ln.fgMax = maxT(ln.fgMax, ev.at)
				}
			}
			buf.msgs = buf.msgs[:0]
		}
	}
}

// loop is the shared coordinator loop behind Run and RunAll.
func (e *Engine) loop(deadline netsim.Time, quiesce bool) (int, error) {
	e.trace = e.sim.ExecTrace()
	exDeadline := deadline
	if exDeadline < maxTime {
		exDeadline++ // events at exactly deadline execute
	}
	total := 0
	for {
		e.drainCross()
		e.publish()
		if quiesce && e.totalFG() == 0 {
			return total, nil
		}
		tG, okG := e.global.head()
		tS := maxTime
		okS := false
		for _, ln := range e.lanes {
			if at, ok := ln.head(); ok {
				okS = true
				if at < tS {
					tS = at
				}
			}
		}
		if !okG && !okS {
			return total, nil
		}
		if !quiesce && (!okG || tG > deadline) && (!okS || tS > deadline) {
			return total, nil
		}
		if okG && (!okS || tG <= tS) {
			// Global events order before shard events at equal time
			// (origin -1); run exactly one, then re-evaluate — it may
			// have scheduled in any lane.
			n := e.global.runWindow(e, tG+1, 1)
			total += n
			if e.global.err != nil {
				return total, e.global.err
			}
			continue
		}
		// Shard epoch.
		stride := e.lookahead
		if stride <= 0 {
			stride = defaultStride
		}
		windowEnd := tS + stride
		if windowEnd < tS { // overflow
			windowEnd = maxTime
		}
		if okG && tG < windowEnd {
			windowEnd = tG
		}
		if exDeadline < windowEnd {
			windowEnd = exDeadline
		}
		if quiesce {
			// Stop-at-quiescence: never run background events beyond
			// the latest foreground timestamp ever scheduled. fgMax is
			// monotone, so this can only shrink the window — safe —
			// and it is derived from deterministic per-lane state.
			fgEnd := e.global.fgMax
			for _, ln := range e.lanes {
				fgEnd = maxT(fgEnd, ln.fgMax)
			}
			if fgEnd+1 < windowEnd {
				windowEnd = fgEnd + 1
			}
		}
		var n int
		var err error
		if e.merged {
			n, err = e.runMergedWindow(windowEnd)
		} else {
			n, err = e.runEpoch(windowEnd)
		}
		total += n
		if err != nil {
			return total, err
		}
		if total >= eventCap {
			return total, errors.New("parsim: event cap exceeded (livelock?)")
		}
	}
}

// runEpoch executes one lookahead window across all lanes — in
// parallel when workers are available, inline otherwise. Identical
// results either way.
func (e *Engine) runEpoch(windowEnd netsim.Time) (int, error) {
	e.epochs.Inc()
	n := 0
	if e.workers <= 1 || e.work == nil {
		// Inline execution still uses epoch semantics (inEpoch): event
		// keys must come from the source lane and cross-shard events
		// must go through the buffers, or the creation counters — and
		// with them every tie-break — would differ from a worker run.
		e.inEpoch = true
		for _, ln := range e.lanes {
			n += ln.runWindow(e, windowEnd, eventCap)
		}
		e.inEpoch = false
		if len(e.workerEvents) > 0 {
			e.workerEvents[0].Add(uint64(n))
		}
	} else {
		e.windowEnd = windowEnd
		e.cursor.Store(0)
		e.inEpoch = true
		start := time.Now()
		for i := 0; i < e.workers; i++ {
			e.work <- struct{}{}
		}
		for i := 0; i < e.workers; i++ {
			<-e.done
		}
		e.inEpoch = false
		wall := time.Since(start)
		var stall time.Duration
		for w := 0; w < e.workers; w++ {
			if busy := e.epochBusy[w]; busy < wall {
				stall += wall - busy
			}
		}
		e.stall.Add(uint64(stall))
		for _, ln := range e.lanes {
			n += int(ln.executed - e.shardPub[ln.id])
		}
	}
	for _, ln := range e.lanes {
		if d := ln.executed - e.shardPub[ln.id]; d > 0 {
			e.shardEvents[ln.id].Add(d)
			e.shardPub[ln.id] = ln.executed
		}
		if ln.err != nil {
			return n, ln.err
		}
	}
	return n, nil
}

// runMergedWindow executes the window in fully merged key order on the
// coordinator — the serial fallback for zero-lookahead topologies.
func (e *Engine) runMergedWindow(windowEnd netsim.Time) (int, error) {
	e.epochs.Inc()
	n := 0
	for {
		var best *lane
		var bestEv *pevent
		for _, ln := range e.lanes {
			if _, ok := ln.head(); !ok {
				continue
			}
			if ev := ln.queue[0]; best == nil || less(ev, bestEv) {
				best, bestEv = ln, ev
			}
		}
		if best == nil || bestEv.at >= windowEnd {
			break
		}
		e.inEpoch = true
		n += best.runWindow(e, bestEv.at+1, 1)
		e.inEpoch = false
		// Zero-delay cross-shard events land in buffers even though
		// nothing runs concurrently; fold them in immediately so they
		// are visible as candidates.
		e.drainCross()
		if best.err != nil {
			return n, best.err
		}
		if n >= eventCap {
			return n, errors.New("parsim: event cap exceeded (livelock?)")
		}
	}
	if len(e.workerEvents) > 0 {
		e.workerEvents[0].Add(uint64(n))
	}
	for _, ln := range e.lanes {
		if d := ln.executed - e.shardPub[ln.id]; d > 0 {
			e.shardEvents[ln.id].Add(d)
			e.shardPub[ln.id] = ln.executed
		}
	}
	return n, nil
}

// worker is the body of one worker goroutine: per epoch, claim lanes
// off the shared cursor and run their windows.
func (e *Engine) worker(wid int, work <-chan struct{}) {
	for range work {
		start := time.Now()
		n := 0
		for {
			i := int(e.cursor.Add(1)) - 1
			if i >= e.shards {
				break
			}
			n += e.lanes[i].runWindow(e, e.windowEnd, eventCap)
		}
		e.epochBusy[wid] = time.Since(start)
		e.workerEvents[wid].Add(uint64(n))
		e.done <- struct{}{}
	}
}

// publish refreshes driver-visible derived state: the driver clock
// (max of all lane clocks) and the queue-depth gauge. Coordinator-only,
// called at deterministic points, so snapshots taken at global events
// see deterministic values.
func (e *Engine) publish() {
	now := e.global.now
	for _, ln := range e.lanes {
		if ln.now > now {
			now = ln.now
		}
	}
	e.global.now = now
	e.queueDepth.Set(int64(e.QueueLen()))
}
