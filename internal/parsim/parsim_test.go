package parsim

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"discs/internal/netsim"
	"discs/internal/obs"
)

// buildPair wires two nodes in different shards with a 1ms link.
func buildPair(t *testing.T, workers int) (*netsim.Simulator, *Engine, *netsim.Node, *netsim.Node, *netsim.Link) {
	t.Helper()
	s := netsim.New()
	a, err := s.AddNode("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.AddNode("b")
	if err != nil {
		t.Fatal(err)
	}
	a.SetShard(0)
	b.SetShard(1)
	l, err := s.Connect(a, b, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(s, Options{Shards: 4, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return s, e, a, b, l
}

func TestCrossShardPingPong(t *testing.T) {
	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			s, _, a, b, _ := buildPair(t, workers)
			const rounds = 50
			got := 0
			var lastAt netsim.Time
			bounce := func(self, peer *netsim.Node) netsim.HandlerFunc {
				return func(from *netsim.Node, l *netsim.Link, msg netsim.Message) {
					got++
					lastAt = self.Now()
					if got < rounds {
						self.SendTo(peer, netsim.Bytes{1})
					}
				}
			}
			a.SetHandler(bounce(a, b))
			b.SetHandler(bounce(b, a))
			a.SendTo(b, netsim.Bytes{1})
			if _, err := s.RunAll(); err != nil {
				t.Fatal(err)
			}
			if got != rounds {
				t.Fatalf("bounced %d, want %d", got, rounds)
			}
			if want := netsim.Time(rounds) * time.Millisecond; lastAt != want {
				t.Fatalf("last delivery at %v, want %v", lastAt, want)
			}
			if v := s.Stats().Get(netsim.MetricDelivered); v != rounds {
				t.Fatalf("delivered metric %d, want %d", v, rounds)
			}
		})
	}
}

// runScenario drives a mixed workload — cross-shard chatter, same-shard
// timers, duplicate timestamps, background cascades, fault injection,
// a link flap, a driver grace timer — and returns the final snapshot
// (parsim namespace stripped) and the sorted execution trace.
func runScenario(t *testing.T, workers int) (map[string]uint64, []obs.Event) {
	t.Helper()
	s := netsim.New()
	s.Registry().SetTraceCapacity(1 << 16)
	tr := s.Registry().Tracer()
	s.SetExecTrace(tr)

	const n = 12
	nodes := make([]*netsim.Node, n)
	for i := range nodes {
		nd, err := s.AddNode(fmt.Sprintf("n%d", i))
		if err != nil {
			t.Fatal(err)
		}
		nd.SetShard(i % 4)
		nodes[i] = nd
	}
	var links []*netsim.Link
	for i := range nodes {
		for j := i + 1; j < n; j += 3 {
			l, err := s.Connect(nodes[i], nodes[j], time.Millisecond*netsim.Time(1+(i+j)%3))
			if err != nil {
				t.Fatal(err)
			}
			l.SetFaults(netsim.LinkFaults{Loss: 0.05, Dup: 0.05, JitterMax: 300 * time.Microsecond})
			links = append(links, l)
		}
	}
	e, err := New(s, Options{Shards: 4, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s.SeedFaults(7)

	received := s.Registry().Counter("test.received")
	for i := range nodes {
		nd := nodes[i]
		nd.SetHandler(netsim.HandlerFunc(func(from *netsim.Node, l *netsim.Link, msg netsim.Message) {
			received.Inc()
			if msg.Size() > 1 {
				// Forward a shorter copy to every neighbour: fan-out
				// with duplicate timestamps across lanes.
				for _, nl := range nd.Links() {
					nl.Send(nd, netsim.Bytes(make([]byte, msg.Size()-1)))
				}
			}
		}))
		// Same-shard timer ladder with duplicate timestamps.
		for k := 0; k < 3; k++ {
			nd.After(2*time.Millisecond, func() { received.Inc() })
		}
		// Background cascade: a housekeeping tick that sends.
		nd.AfterBackground(5*time.Millisecond, func() {
			for _, nl := range nd.Links() {
				nl.Send(nd, netsim.Bytes{9})
			}
		})
	}
	if err := s.ScheduleFlap(links[0], 3*time.Millisecond, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		nodes[i].SendTo(nodes[(i+1)%n], netsim.Bytes(make([]byte, 4)))
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	s.Run(s.Now() + 20*time.Millisecond)
	s.After(time.Millisecond, func() { received.Inc() })
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}

	snap := map[string]uint64{}
	for name, v := range s.Registry().Snapshot().Counters {
		if len(name) >= 7 && name[:7] == "parsim." {
			continue
		}
		snap[name] = v
	}
	evs := append([]obs.Event(nil), tr.Events()...)
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.AS != b.AS {
			return a.AS < b.AS
		}
		return a.Serial < b.Serial
	})
	return snap, evs
}

// TestDeterminismAcrossWorkers is the core guarantee: 1-worker and
// 4-worker runs of the same faulted scenario are bit-identical.
func TestDeterminismAcrossWorkers(t *testing.T) {
	snap1, ev1 := runScenario(t, 1)
	snap4, ev4 := runScenario(t, 4)
	if len(ev1) == 0 {
		t.Fatal("no trace events recorded")
	}
	if len(ev1) != len(ev4) {
		t.Fatalf("trace lengths differ: %d vs %d", len(ev1), len(ev4))
	}
	for i := range ev1 {
		if ev1[i] != ev4[i] {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, ev1[i], ev4[i])
		}
	}
	if len(snap1) != len(snap4) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(snap1), len(snap4))
	}
	for k, v := range snap1 {
		if snap4[k] != v {
			t.Fatalf("counter %s differs: %d vs %d", k, v, snap4[k])
		}
	}
}

func TestTimerStopAndTicker(t *testing.T) {
	s, _, a, _, _ := buildPair(t, 2)
	fired := false
	tm := a.After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	ticks := 0
	tk := s.EveryBackground(time.Millisecond, func() { ticks++ })
	s.Run(3500 * time.Microsecond)
	tk.Stop()
	if s.QueueLen() != 0 {
		t.Fatalf("stopped ticker left %d events queued", s.QueueLen())
	}
	s.Run(10 * time.Millisecond)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
}

func TestRunAllIgnoresBackground(t *testing.T) {
	s, _, a, b, _ := buildPair(t, 2)
	bg := 0
	a.AfterBackground(time.Millisecond, func() { bg++ })
	fg := false
	b.After(100*time.Microsecond, func() { fg = true })
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !fg {
		t.Fatal("foreground event did not run")
	}
	if bg != 0 {
		t.Fatal("background event beyond the last foreground event ran under RunAll")
	}
	s.Run(2 * time.Millisecond)
	if bg != 1 {
		t.Fatalf("background event did not run under Run: %d", bg)
	}
}

// TestMergedFallback: a zero-delay cross-shard link forces merged
// execution with identical semantics.
func TestMergedFallback(t *testing.T) {
	s := netsim.New()
	a, _ := s.AddNode("a")
	b, _ := s.AddNode("b")
	a.SetShard(0)
	b.SetShard(1)
	if _, err := s.Connect(a, b, 0); err != nil {
		t.Fatal(err)
	}
	e, err := New(s, Options{Shards: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if !e.Merged() {
		t.Fatal("zero-delay cross-shard link should force merged mode")
	}
	got := 0
	b.SetHandler(netsim.HandlerFunc(func(from *netsim.Node, l *netsim.Link, msg netsim.Message) { got++ }))
	for i := 0; i < 5; i++ {
		a.SendTo(b, netsim.Bytes{1})
	}
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("delivered %d, want 5", got)
	}
}

// TestStepMergedOrder: Step single-steps the same merged order Run
// would execute.
func TestStepMergedOrder(t *testing.T) {
	s, _, a, b, _ := buildPair(t, 2)
	var order []string
	a.After(2*time.Millisecond, func() { order = append(order, "a2") })
	b.After(time.Millisecond, func() { order = append(order, "b1") })
	s.Schedule(time.Millisecond, func() { order = append(order, "g1") })
	for s.Step() {
	}
	want := []string{"g1", "b1", "a2"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestDriverClockAdvances(t *testing.T) {
	s, _, a, b, _ := buildPair(t, 2)
	b.SetHandler(netsim.HandlerFunc(func(from *netsim.Node, l *netsim.Link, msg netsim.Message) {}))
	a.SendTo(b, netsim.Bytes{1})
	if _, err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != time.Millisecond {
		t.Fatalf("driver clock %v, want 1ms", s.Now())
	}
	s.Run(5 * time.Millisecond)
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("driver clock %v, want 5ms after Run", s.Now())
	}
	if got := a.Now(); got != 5*time.Millisecond {
		t.Fatalf("node clock %v, want 5ms after Run", got)
	}
}
