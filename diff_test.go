// Differential tests for the parallel engine: the same scenario run
// at -workers 1 and -workers 4 must produce byte-identical final obs
// snapshots and the same event ordering. The mid-size fault-injected
// variant always runs (so `make check` exercises it under -race); the
// full paper-scale variant is gated behind DISCS_PAPER_DIFF because it
// runs the 44 036-AS scenario twice.
package discs_test

import (
	"math/rand"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"discs/internal/attack"
	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/netsim"
	"discs/internal/obs"
	"discs/internal/parsim"
	"discs/internal/topology"
)

// stripEngineMetrics drops the parsim.* namespace: stall and worker
// attribution are wall-clock and scheduling dependent by design (see
// DESIGN.md §11); everything else must match exactly.
func stripEngineMetrics(snap obs.Snapshot) (map[string]uint64, map[string]int64) {
	counters := make(map[string]uint64, len(snap.Counters))
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "parsim.") {
			continue
		}
		counters[name] = v
	}
	gauges := make(map[string]int64, len(snap.Gauges))
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "parsim.") {
			continue
		}
		gauges[name] = v
	}
	return counters, gauges
}

// sortTrace puts trace events into the canonical order used for
// comparison. Lanes publish into the shared ring as they run, so the
// raw ring order is scheduling-dependent; the canonical sort is not.
func sortTrace(evs []obs.Event) []obs.Event {
	out := append([]obs.Event(nil), evs...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.AS != b.AS {
			return a.AS < b.AS
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.Serial < b.Serial
	})
	return out
}

// runMidScenario executes a fault-injected mid-size DISCS scenario —
// BGP convergence, 6 DAS deployments over lossy/jittery controller
// links, heartbeats, an attack burst, invocation — under the parallel
// engine with the given worker count.
func runMidScenario(t *testing.T, workers int) (map[string]uint64, map[string]int64, []obs.Event) {
	t.Helper()
	topo, err := topology.GenerateInternet(topology.GenConfig{
		NumASes: 120, NumPrefixes: 360, ZipfExponent: 1.0, Seed: 3, TierOneCount: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net.AssignShards(parsim.DefaultShards)
	eng, err := parsim.New(net.Sim, parsim.Options{Shards: parsim.DefaultShards, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	net.Sim.Registry().SetTraceCapacity(1 << 15)
	net.Sim.SeedFaults(7)
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}

	// Controller links (created from Deploy onward) are faulted: the
	// control plane must converge despite loss, duplication and jitter,
	// identically at every worker count.
	net.Sim.SetDefaultLinkFaults(netsim.LinkFaults{
		Loss: 0.05, Dup: 0.05, JitterMax: 500 * time.Microsecond,
	})
	sys := core.NewSystem(net, core.DefaultConfig())
	deployers := topo.BySizeDesc()[:6]
	for i, asn := range deployers {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}
	// Heartbeats tick on background events: advance past a few
	// intervals so liveness traffic crosses the faulted links too.
	net.Sim.Run(net.Sim.Now() + 3*core.DefaultConfig().HeartbeatInterval)

	victim := deployers[len(deployers)-1]
	sampler := attack.NewSampler(topo)
	rng := rand.New(rand.NewSource(5))
	flows := make([]attack.Flow, 40)
	for i := range flows {
		flows[i] = sampler.DrawFlowForVictim(attack.DDDoS, victim, rng)
	}
	if _, err := attack.RunPaced(sys, flows, 5, 5, 2, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	vc := sys.Controllers[victim]
	if _, err := vc.Invoke(core.Invocation{
		Prefixes: vc.OwnPrefixes(), Function: core.DP, Duration: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}
	if _, err := attack.RunPaced(sys, flows, 5, 6, 2, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	counters, gauges := stripEngineMetrics(sys.Stats())
	return counters, gauges, sortTrace(sys.Registry().Tracer().Events())
}

func diffSnapshots(t *testing.T, label string,
	c1, c4 map[string]uint64, g1, g4 map[string]int64, e1, e4 []obs.Event) {
	t.Helper()
	if len(c1) != len(c4) {
		t.Fatalf("%s: counter sets differ: %d vs %d", label, len(c1), len(c4))
	}
	for name, v := range c1 {
		if c4[name] != v {
			t.Errorf("%s: counter %s: %d vs %d", label, name, v, c4[name])
		}
	}
	for name, v := range g1 {
		if g4[name] != v {
			t.Errorf("%s: gauge %s: %d vs %d", label, name, v, g4[name])
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	if len(e1) != len(e4) {
		t.Fatalf("%s: trace lengths differ: %d vs %d", label, len(e1), len(e4))
	}
	for i := range e1 {
		if e1[i] != e4[i] {
			t.Fatalf("%s: trace diverges at %d: %+v vs %+v", label, i, e1[i], e4[i])
		}
	}
}

// TestSystemDifferentialWorkers: the fault-injected mid-size scenario
// is bit-identical between 1 and 4 workers — final counters, gauges,
// and the full control/data-plane event trace.
func TestSystemDifferentialWorkers(t *testing.T) {
	c1, g1, e1 := runMidScenario(t, 1)
	c4, g4, e4 := runMidScenario(t, 4)
	if len(e1) == 0 {
		t.Fatal("no trace events recorded")
	}
	if c1["netsim.delivered"] == 0 {
		t.Fatal("scenario delivered nothing")
	}
	diffSnapshots(t, "mid-size", c1, c4, g1, g4, e1, e4)
}

// TestPaperDifferential runs the full 44 036-AS paper scenario at
// -workers 1 and -workers 4 and requires byte-identical final
// snapshots. Gated: two paper-scale runs.
func TestPaperDifferential(t *testing.T) {
	if os.Getenv("DISCS_PAPER_DIFF") == "" {
		t.Skip("set DISCS_PAPER_DIFF=1 (make diff-paper) to run the paper-scale differential")
	}
	run := func(workers int) (map[string]uint64, map[string]int64) {
		_, snap := measurePaperRun(t, workers)
		return stripEngineMetrics(snap)
	}
	c1, g1 := run(1)
	c4, g4 := run(4)
	diffSnapshots(t, "paper", c1, c4, g1, g4, nil, nil)
}
