// Observability budget gate: the instrumented data plane — registry
// counters live, sampled tracing enabled — must cost nothing in
// allocations and at most 5% in latency over the committed
// BENCH_dataplane.json baseline. TestObsBudget runs on every `go
// test`; TestObsReport (make bench-obs) measures the actual ratio and
// writes BENCH_obs.json, failing on regression.
package discs_test

import (
	"net/netip"
	"os"
	"testing"
	"time"

	"discs/internal/benchgate"
	"discs/internal/core"
	"discs/internal/obs"
	"discs/internal/packet"
	"discs/internal/topology"
)

// instrumentedPair is dataPlanePair built through the options API: one
// shared registry, per-AS scopes and sampled packet tracing — the
// fully instrumented configuration a deployed System uses.
func instrumentedPair(tb testing.TB, sampleEvery int) (reg *obs.Registry, peer, victim *core.BorderRouter, now time.Time) {
	tb.Helper()
	tp := topology.New()
	for asn, p := range map[topology.ASN]string{1: "10.1.0.0/16", 3: "10.3.0.0/16"} {
		if _, err := tp.AddAS(asn); err != nil {
			tb.Fatal(err)
		}
		if err := tp.AddPrefix(asn, netip.MustParsePrefix(p)); err != nil {
			tb.Fatal(err)
		}
	}
	key := make([]byte, 16)
	t0 := time.Unix(0, 0).UTC()
	v := netip.MustParsePrefix("10.3.0.0/16")
	reg = obs.NewRegistry()

	pt := core.NewTables(1, tp.Pfx2AS())
	pt.In[core.TableOutDst].Install(v, core.OpDPFilter, t0, time.Hour, 0)
	pt.In[core.TableOutDst].Install(v, core.OpCDPStamp, t0, time.Hour, 0)
	pt.Keys.SetStampKey(3, key)
	peer = mustRouter(core.RouterOptions{
		Tables: pt, Seed: 1, Registry: reg, Scope: "as1.", AS: 1,
		TraceSampleEvery: sampleEvery,
	})

	vt := core.NewTables(3, tp.Pfx2AS())
	vt.In[core.TableInDst].Install(v, core.OpCDPVerify, t0, time.Hour, 0)
	vt.Keys.SetVerifyKey(1, key)
	victim = mustRouter(core.RouterOptions{
		Tables: vt, Seed: 2, Registry: reg, Scope: "as3.", AS: 3,
		TraceSampleEvery: sampleEvery,
	})
	return reg, peer, victim, t0.Add(time.Minute)
}

// TestObsBudget enforces, on every test run, that instrumentation is
// free of allocations: the stamp+verify round trip with live registry
// counters and per-packet trace sampling allocates nothing, and the
// counters and events actually land in the registry.
func TestObsBudget(t *testing.T) {
	// sampleEvery=1 is the worst case: every packet emits a trace event.
	reg, peer, victim, now := instrumentedPair(t, 1)
	p := &packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr("10.1.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
		Payload: []byte("benchmark payload!")}
	const runs = 2000
	allocs := testing.AllocsPerRun(runs, func() {
		if v := peer.ProcessOutbound(core.V4{P: p}, now); v != core.VerdictPassStamped {
			t.Fatalf("outbound %v", v)
		}
		if v := victim.ProcessInbound(core.V4{P: p}, now); v != core.VerdictPassVerified {
			t.Fatalf("inbound %v", v)
		}
	})
	if allocs > 0 {
		t.Fatalf("instrumented stamp+verify allocates %.1f/packet, want 0", allocs)
	}

	snap := reg.Snapshot()
	if got := snap.Get("as1." + core.MetricRouterOutStamped); got == 0 {
		t.Fatal("outbound counters not registered under the peer scope")
	}
	if got := snap.Get("as3." + core.MetricRouterInVerified); got == 0 {
		t.Fatal("inbound counters not registered under the victim scope")
	}
	if snap.Sum(core.MetricRouterMACsComputed) == 0 {
		t.Fatal("crypto counter missing")
	}
	tr := reg.Tracer()
	if tr.Total() == 0 {
		t.Fatal("per-packet sampling emitted no events")
	}
	var sampled bool
	for _, e := range tr.Events() {
		if e.Kind == obs.EvPacketSample && e.Verdict != "" {
			sampled = true
			break
		}
	}
	if !sampled {
		t.Fatal("no packet.sample event with a verdict in the ring")
	}
}

// obsStampVerifySerial is stampVerifySerial against the instrumented
// pair (realistic 64-packet sampling period), for the latency gate.
func obsStampVerifySerial(b *testing.B) {
	_, peer, victim, now := instrumentedPair(b, 64)
	p := &packet.IPv4{
		TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr("10.1.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
		Payload: []byte("benchmark payload!"),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := peer.ProcessOutbound(core.V4{P: p}, now); v != core.VerdictPassStamped {
			b.Fatalf("outbound %v", v)
		}
		if v := victim.ProcessInbound(core.V4{P: p}, now); v != core.VerdictPassVerified {
			b.Fatalf("inbound %v", v)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpps")
}

// BenchmarkStampVerifyV4Instrumented is the manual-run version of the
// gate bench: compare against BenchmarkStampVerifyV4 to see the cost
// of observability.
func BenchmarkStampVerifyV4Instrumented(b *testing.B) { obsStampVerifySerial(b) }

// TestObsReport regenerates BENCH_obs.json and fails if the
// instrumented path runs more than 5% slower than the uninstrumented
// one or allocates. Both paths are measured back-to-back in the same
// process (best of three interleaved rounds) so the gate compares
// observability cost, not machine drift against the committed
// BENCH_dataplane.json absolute — that number is recorded in the
// report for context. Gated behind an environment variable because it
// runs real benchmarks; `make bench-obs` sets it.
func TestObsReport(t *testing.T) {
	if os.Getenv("DISCS_OBS_REPORT") == "" {
		t.Skip("set DISCS_OBS_REPORT=1 (make bench-obs) to regenerate BENCH_obs.json")
	}
	var base struct {
		Serial struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"serial"`
	}
	benchgate.Load(t, "BENCH_dataplane.json", "make bench-dataplane", &base)
	if base.Serial.NsPerOp <= 0 {
		t.Fatal("BENCH_dataplane.json has no serial ns/op")
	}

	nsOf := func(r testing.BenchmarkResult) float64 {
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	const rounds = 3
	plainNs, instrNs := 0.0, 0.0
	var instrAllocs int64
	for i := 0; i < rounds; i++ {
		plain := testing.Benchmark(stampVerifySerial)
		instr := testing.Benchmark(obsStampVerifySerial)
		if n := nsOf(plain); plainNs == 0 || n < plainNs {
			plainNs = n
		}
		if n := nsOf(instr); instrNs == 0 || n < instrNs {
			instrNs = n
		}
		instrAllocs = instr.AllocsPerOp()
		if instrAllocs > 0 {
			t.Fatalf("instrumented path allocates %d/op, want 0", instrAllocs)
		}
	}
	ratio := instrNs / plainNs
	const budget = 1.05

	report := struct {
		GeneratedBy     string  `json:"generated_by"`
		CommittedNsOp   float64 `json:"committed_baseline_ns_per_op"`
		PlainNsOp       float64 `json:"plain_ns_per_op"`
		InstrumentedNs  float64 `json:"instrumented_ns_per_op"`
		Ratio           float64 `json:"ratio"`
		Budget          float64 `json:"budget"`
		AllocsPerOp     int64   `json:"allocs_per_op"`
		TraceSampleEach int     `json:"trace_sample_every"`
	}{
		GeneratedBy:     "make bench-obs",
		CommittedNsOp:   base.Serial.NsPerOp,
		PlainNsOp:       plainNs,
		InstrumentedNs:  instrNs,
		Ratio:           ratio,
		Budget:          budget,
		AllocsPerOp:     instrAllocs,
		TraceSampleEach: 64,
	}
	benchgate.Write(t, "BENCH_obs.json", report)
	t.Logf("instrumented %.2f ns/op vs plain %.2f ns/op (ratio %.3f, budget %.2f; committed baseline %.2f)",
		instrNs, plainNs, ratio, budget, base.Serial.NsPerOp)
	if ratio > budget {
		t.Fatalf("observability overhead %.1f%% exceeds the %.0f%% budget",
			100*(ratio-1), 100*(budget-1))
	}
}
