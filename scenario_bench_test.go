// Scenario benchmark gate: a mid-size pulse-wave campaign — onset
// train, invocation, adaptive rotation, sustain — run end to end
// through the scenario engine, gated on wall-clock and injection
// throughput against the committed BENCH_scenario.json. `make
// bench-scenario` (part of `make check`) enforces the budgets;
// `make bench-scenario-report` regenerates the file. Env-gated so
// plain `go test ./...` stays wall-clock independent.
package discs_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	"discs/internal/benchgate"
	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/parsim"
	"discs/internal/scenario"
	"discs/internal/topology"
)

const (
	scenarioBenchASes     = 300
	scenarioBenchPrefixes = 900
	scenarioBenchDAS      = 10
	scenarioBenchWorkers  = 4
)

// scenarioBenchReport is the schema of BENCH_scenario.json.
type scenarioBenchReport struct {
	GeneratedBy    string  `json:"generated_by"`
	CPUs           int     `json:"cpus"`
	ASes           int     `json:"ases"`
	DAS            int     `json:"das"`
	Phases         int     `json:"phases"`
	PacketsSent    uint64  `json:"packets_sent"`
	RunS           float64 `json:"run_s"`
	Kpps           float64 `json:"kpps"`
	DatasetRecords int     `json:"dataset_records"`
}

// measureScenarioRun builds the mid-size world, runs the campaign, and
// returns the measured report. It fails the test if the run degenerates
// (no mitigation, empty dataset) so the gate also guards correctness.
func measureScenarioRun(t *testing.T) scenarioBenchReport {
	t.Helper()
	topo, err := topology.GenerateInternet(topology.GenConfig{
		NumASes:      scenarioBenchASes,
		NumPrefixes:  scenarioBenchPrefixes,
		ZipfExponent: 1.0,
		Seed:         17,
		TierOneCount: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net.AssignShards(parsim.DefaultShards)
	eng, err := parsim.New(net.Sim, parsim.Options{
		Shards: parsim.DefaultShards, Workers: scenarioBenchWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(net, core.DefaultConfig())
	for i, asn := range topo.BySizeDesc()[:scenarioBenchDAS] {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}

	spec, err := scenario.New("bench", 17).
		Pulse("onset", 200, 10, 4, 250*time.Millisecond).
		Invoke("defend").
		Adaptive("rotate", scenario.StrategyRotate, 200, 10, 3, 250*time.Millisecond).
		Pulse("sustain", 200, 10, 3, 250*time.Millisecond).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	seng, err := scenario.NewEngine(scenario.Options{Spec: spec, Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := seng.Run()
	if err != nil {
		t.Fatal(err)
	}
	runS := time.Since(start).Seconds()

	if res.TTM == nil || !res.TTM.Invoked {
		t.Fatal("bench campaign never invoked the defense")
	}
	if len(res.Dataset) == 0 {
		t.Fatal("bench campaign exported no dataset")
	}
	var sent uint64
	for _, ph := range res.Phases {
		sent += uint64(ph.Sent)
	}
	rep := scenarioBenchReport{
		GeneratedBy:    "make bench-scenario-report",
		CPUs:           runtime.NumCPU(),
		ASes:           scenarioBenchASes,
		DAS:            scenarioBenchDAS,
		Phases:         len(res.Phases),
		PacketsSent:    sent,
		RunS:           runS,
		Kpps:           float64(sent) / runS / 1e3,
		DatasetRecords: len(res.Dataset),
	}
	t.Logf("scenario bench: %d phases, %d packets in %.2fs (%.0f kpps), %d dataset records",
		rep.Phases, rep.PacketsSent, rep.RunS, rep.Kpps, rep.DatasetRecords)
	return rep
}

// TestScenarioBudget is the regression gate `make bench-scenario`
// (part of `make check`) runs: the mid-size campaign's wall-clock and
// injection throughput stay within budget of BENCH_scenario.json, and
// the run's packet volume and dataset shape match exactly — the
// engine is deterministic, so any drift there is a behavior change.
func TestScenarioBudget(t *testing.T) {
	if os.Getenv("DISCS_SCENARIO_BENCH") == "" {
		t.Skip("set DISCS_SCENARIO_BENCH=1 (make bench-scenario) to run the scenario gate")
	}
	var base scenarioBenchReport
	benchgate.Load(t, "BENCH_scenario.json", "make bench-scenario-report", &base)

	rep := measureScenarioRun(t)
	if rep.PacketsSent != base.PacketsSent {
		t.Errorf("packets sent: %d, committed %d — scenario volume changed, regenerate the baseline",
			rep.PacketsSent, base.PacketsSent)
	}
	if rep.DatasetRecords != base.DatasetRecords {
		t.Errorf("dataset records: %d, committed %d — export shape changed, regenerate the baseline",
			rep.DatasetRecords, base.DatasetRecords)
	}
	// Wide slack: the campaign runs in well under a second, so the
	// wall-clock budget only guards order-of-magnitude regressions —
	// the exact-match assertions above catch behavior drift.
	benchgate.Budget(t, "scenario campaign wall-clock (s)", rep.RunS, base.RunS, 3.0)
	benchgate.Floor(t, "scenario injection throughput (kpps)", rep.Kpps, base.Kpps, 0.75)
}

// TestScenarioReport regenerates BENCH_scenario.json
// (make bench-scenario-report).
func TestScenarioReport(t *testing.T) {
	if os.Getenv("DISCS_SCENARIO_REPORT") == "" {
		t.Skip("set DISCS_SCENARIO_REPORT=1 (make bench-scenario-report) to regenerate BENCH_scenario.json")
	}
	benchgate.Write(t, "BENCH_scenario.json", measureScenarioRun(t))
}
