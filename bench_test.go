// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§VI) plus the ablations called out in DESIGN.md §5.
// Each figure bench regenerates the corresponding data series on the
// paper-scale synthetic Internet and reports the headline checkpoint
// values as custom metrics, so `go test -bench` doubles as the
// reproduction run (EXPERIMENTS.md records paper-vs-measured).
package discs_test

import (
	"math/rand"
	"net/netip"
	"os"
	"runtime"
	"testing"
	"time"

	"discs/internal/attack"
	"discs/internal/benchgate"
	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/cost"
	"discs/internal/eval"
	"discs/internal/packet"
	"discs/internal/qos"
	"discs/internal/topology"
	"discs/internal/wire"
)

// paperInternet caches the 44 036-AS synthetic Internet across benches.
var paperInternet *topology.Topology

// mustRouter builds a border router from options; bench/test setup is
// static, so an options error is a harness bug worth a panic.
func mustRouter(o core.RouterOptions) *core.BorderRouter {
	r, err := core.NewBorderRouterWithOptions(o)
	if err != nil {
		panic(err)
	}
	return r
}

func paperScale(b *testing.B) (*topology.Topology, *eval.Ratios) {
	b.Helper()
	if paperInternet == nil {
		cfg := topology.DefaultGenConfig()
		cfg.SkipLinks = true
		tp, err := topology.GenerateInternet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		paperInternet = tp
	}
	return paperInternet, eval.FromTopology(paperInternet)
}

// BenchmarkFig5 regenerates Figure 5: mean deployment incentives of
// DP/SP, CDP/CSP and DP+CDP/SP+CSP over random deployment orders.
// Metrics: incentive at 10% and 50% deployment (paper: 0.1688, 0.6865).
func BenchmarkFig5(b *testing.B) {
	_, r := paperScale(b)
	var at10, at50 float64
	for i := 0; i < b.N; i++ {
		pts, err := eval.MeanIncentiveCurve(r, 5, 21, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Ratio <= 0.11 && p.Ratio >= 0.09 {
				at10 = p.Y["DP+CDP"]
			}
			if p.Ratio <= 0.51 && p.Ratio >= 0.49 {
				at50 = p.Y["DP+CDP"]
			}
		}
	}
	b.ReportMetric(at10, "inc@10%")
	b.ReportMetric(at50, "inc@50%")
}

// BenchmarkFig6a regenerates Figure 6a: cumulated address-space ratio
// under the uniform/random/optimal strategies. Metric: optimal share
// after 629 deployers (implied ≈0.90 by the paper's Fig 7 checkpoint).
func BenchmarkFig6a(b *testing.B) {
	_, r := paperScale(b)
	var share629 float64
	for i := 0; i < b.N; i++ {
		cum := r.CumulativeRatio(r.OptimalOrder())
		share629 = cum[628]
	}
	b.ReportMetric(share629, "optimal-share@629")
}

// BenchmarkFig6b regenerates Figure 6b: DP+CDP incentive vs number of
// deployers for each strategy over the whole process.
func BenchmarkFig6b(b *testing.B) {
	_, r := paperScale(b)
	var last float64
	for i := 0; i < b.N; i++ {
		curves, err := eval.StrategyCurves(r, 21, 1, func(rr *eval.Ratios, order []topology.ASN, s int) ([]eval.Point, error) {
			return eval.IncentiveCurve(rr, order, s)
		})
		if err != nil {
			b.Fatal(err)
		}
		pts := curves["optimal"]
		last = pts[len(pts)-1].Y["DP+CDP"]
	}
	b.ReportMetric(last, "optimal-inc@full")
}

// BenchmarkFig6c regenerates Figure 6c (early stage). Metrics: optimal
// incentive at 50 and 200 deployers (paper: 0.68 and 0.88).
func BenchmarkFig6c(b *testing.B) {
	_, r := paperScale(b)
	var at50, at200 float64
	for i := 0; i < b.N; i++ {
		acc := eval.NewAccumulator(r)
		order := r.OptimalOrder()
		for k := 0; k < 200; k++ {
			if err := acc.Deploy(order[k]); err != nil {
				b.Fatal(err)
			}
			if k+1 == 50 {
				at50 = acc.IncBoth()
			}
		}
		at200 = acc.IncBoth()
	}
	b.ReportMetric(at50, "inc@50")
	b.ReportMetric(at200, "inc@200")
}

// BenchmarkFig7a regenerates Figure 7a: global spoofing reduction over
// the whole deployment process, three strategies.
func BenchmarkFig7a(b *testing.B) {
	_, r := paperScale(b)
	var half float64
	for i := 0; i < b.N; i++ {
		pts, err := eval.EffectivenessCurve(r, r.OptimalOrder(), 21)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Ratio >= 0.49 && p.Ratio <= 0.51 {
				half = p.Y["effectiveness"]
			}
		}
	}
	b.ReportMetric(half, "optimal-eff@50%")
}

// BenchmarkFig7b regenerates Figure 7b (early stage). Metrics: optimal
// effectiveness at 50 and 629 deployers (paper: 0.41 and 0.90).
func BenchmarkFig7b(b *testing.B) {
	_, r := paperScale(b)
	var at50, at629 float64
	for i := 0; i < b.N; i++ {
		acc := eval.NewAccumulator(r)
		order := r.OptimalOrder()
		for k := 0; k < 629; k++ {
			if err := acc.Deploy(order[k]); err != nil {
				b.Fatal(err)
			}
			if k+1 == 50 {
				at50 = acc.Effectiveness()
			}
		}
		at629 = acc.Effectiveness()
	}
	b.ReportMetric(at50, "eff@50")
	b.ReportMetric(at629, "eff@629")
}

// BenchmarkSensitivity sweeps the synthetic-Internet shape parameters
// and reports the Fig-7b 50-largest effectiveness checkpoint for each,
// showing how sensitive the headline conclusion is to the dataset
// substitution (DESIGN.md #1). The paper's value is 0.41.
func BenchmarkSensitivity(b *testing.B) {
	shapes := []struct {
		name string
		cfg  topology.GenConfig
	}{
		{"zipf0.8", topology.GenConfig{NumASes: 44036, ZipfExponent: 0.8, Seed: 1, SkipLinks: true}},
		{"zipf1.0", topology.GenConfig{NumASes: 44036, ZipfExponent: 1.0, Seed: 1, SkipLinks: true}},
		{"calibrated", func() topology.GenConfig {
			c := topology.DefaultGenConfig()
			c.SkipLinks = true
			return c
		}()},
	}
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			var eff50 float64
			for i := 0; i < b.N; i++ {
				tp, err := topology.GenerateInternet(sh.cfg)
				if err != nil {
					b.Fatal(err)
				}
				r := eval.FromTopology(tp)
				acc := eval.NewAccumulator(r)
				for _, asn := range r.OptimalOrder()[:50] {
					acc.Deploy(asn)
				}
				eff50 = acc.Effectiveness()
			}
			b.ReportMetric(eff50, "eff@50")
		})
	}
}

// BenchmarkCostController regenerates the §VI-C1 controller cost table.
// Metrics: total memory MB (paper 463.1) and SSL conn/s (paper 147).
func BenchmarkCostController(b *testing.B) {
	var c cost.ControllerCost
	for i := 0; i < b.N; i++ {
		c = cost.Controller(cost.Defaults())
	}
	b.ReportMetric(c.TotalMemoryBytes/1e6, "memMB")
	b.ReportMetric(c.ConnPerSecOnAttack, "conn/s")
	b.ReportMetric(c.CPUUtilization*100, "cpu%")
}

// BenchmarkCostRouter regenerates the §VI-C2 router cost table.
// Metrics: SRAM MB (paper 3.5) and IPv4 line rate Gbps (paper 26.25).
func BenchmarkCostRouter(b *testing.B) {
	var r cost.RouterCost
	for i := 0; i < b.N; i++ {
		r = cost.Router(cost.Defaults())
	}
	b.ReportMetric(r.SRAMBytes/1e6, "sramMB")
	b.ReportMetric(r.V4Gbps, "v4Gbps")
	b.ReportMetric(r.V6Gbps, "v6Gbps")
}

// dataPlanePair builds a stamped CDP peer/victim router pair over a
// tiny Pfx2AS for the data-plane benches.
func dataPlanePair(b testing.TB) (peer, victim *core.BorderRouter, now time.Time) {
	b.Helper()
	tp := topology.New()
	for asn, p := range map[topology.ASN]string{1: "10.1.0.0/16", 3: "10.3.0.0/16"} {
		if _, err := tp.AddAS(asn); err != nil {
			b.Fatal(err)
		}
		if err := tp.AddPrefix(asn, netip.MustParsePrefix(p)); err != nil {
			b.Fatal(err)
		}
	}
	key := make([]byte, 16)
	t0 := time.Unix(0, 0).UTC()
	v := netip.MustParsePrefix("10.3.0.0/16")

	pt := core.NewTables(1, tp.Pfx2AS())
	pt.In[core.TableOutDst].Install(v, core.OpDPFilter, t0, time.Hour, 0)
	pt.In[core.TableOutDst].Install(v, core.OpCDPStamp, t0, time.Hour, 0)
	pt.Keys.SetStampKey(3, key)
	peer = mustRouter(core.RouterOptions{Tables: pt, Seed: 1})

	vt := core.NewTables(3, tp.Pfx2AS())
	vt.In[core.TableInDst].Install(v, core.OpCDPVerify, t0, time.Hour, 0)
	vt.Keys.SetVerifyKey(1, key)
	victim = mustRouter(core.RouterOptions{Tables: vt, Seed: 2})
	return peer, victim, t0.Add(time.Minute)
}

// stampVerifySerial is the full stamp+verify round trip, one packet at
// a time; shared by BenchmarkStampVerifyV4 and the JSON report.
func stampVerifySerial(b *testing.B) {
	peer, victim, now := dataPlanePair(b)
	p := &packet.IPv4{
		TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr("10.1.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
		Payload: []byte("benchmark payload!"),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := peer.ProcessOutbound(core.V4{P: p}, now); v != core.VerdictPassStamped {
			b.Fatalf("outbound %v", v)
		}
		if v := victim.ProcessInbound(core.V4{P: p}, now); v != core.VerdictPassVerified {
			b.Fatalf("inbound %v", v)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpps")
}

// stampVerifyParallel runs the same round trip from GOMAXPROCS
// goroutines against one shared router pair.
func stampVerifyParallel(b *testing.B) {
	peer, victim, now := dataPlanePair(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := &packet.IPv4{
			TTL: 64, Protocol: packet.ProtoUDP,
			Src: netip.MustParseAddr("10.1.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
			Payload: []byte("benchmark payload!"),
		}
		for pb.Next() {
			if v := peer.ProcessOutbound(core.V4{P: p}, now); v != core.VerdictPassStamped {
				b.Fatalf("outbound %v", v)
			}
			if v := victim.ProcessInbound(core.V4{P: p}, now); v != core.VerdictPassVerified {
				b.Fatalf("inbound %v", v)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpps")
}

// stampVerifyBatch runs the round trip through the burst entry points:
// one snapshot load, one CMAC scratch and one counter flush per 64
// packets instead of per packet.
func stampVerifyBatch(b *testing.B) {
	peer, victim, now := dataPlanePair(b)
	const batchSize = 64
	pkts := make([]core.MarkCarrier, batchSize)
	for i := range pkts {
		pkts[i] = core.V4{P: &packet.IPv4{
			TTL: 64, Protocol: packet.ProtoUDP,
			Src: netip.AddrFrom4([4]byte{10, 1, 0, byte(i + 1)}), Dst: netip.MustParseAddr("10.3.0.1"),
			Payload: []byte("benchmark payload!"),
		}}
	}
	out := make([]core.Verdict, 0, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		out = peer.ProcessOutboundBatch(pkts, now, out[:0])
		if out[0] != core.VerdictPassStamped {
			b.Fatalf("outbound %v", out[0])
		}
		out = victim.ProcessInboundBatch(pkts, now, out[:0])
		if out[0] != core.VerdictPassVerified {
			b.Fatalf("inbound %v", out[0])
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpps")
}

// manyFlowsSetup builds the hostile data-plane shape: the peer owns
// 10.0.0.0/8 as 256 /16 prefixes and stamps toward 16 victim ASes
// with distinct keys; each victim verifies its own /24 against the
// peer's key. Sources are drawn from millions of distinct addresses,
// so the per-pipeline address memos thrash and every packet pays the
// full LPM + table walk; destinations alternate across the 16 keys,
// so burst key runs split constantly and the stamp-key memo misses.
func manyFlowsSetup(b testing.TB) (peer *core.BorderRouter, victims [16]*core.BorderRouter, now time.Time) {
	b.Helper()
	tp := topology.New()
	if _, err := tp.AddAS(1); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if err := tp.AddPrefix(1, netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16)); err != nil {
			b.Fatal(err)
		}
	}
	vicPfx := func(k int) netip.Prefix {
		return netip.PrefixFrom(netip.AddrFrom4([4]byte{172, 16, byte(k), 0}), 24)
	}
	for k := 0; k < 16; k++ {
		asn := topology.ASN(201 + k)
		if _, err := tp.AddAS(asn); err != nil {
			b.Fatal(err)
		}
		if err := tp.AddPrefix(asn, vicPfx(k)); err != nil {
			b.Fatal(err)
		}
	}
	t0 := time.Unix(0, 0).UTC()
	pt := core.NewTables(1, tp.Pfx2AS())
	for k := 0; k < 16; k++ {
		key := make([]byte, 16)
		key[0] = byte(k + 1)
		pt.In[core.TableOutDst].Install(vicPfx(k), core.OpDPFilter, t0, time.Hour, 0)
		pt.In[core.TableOutDst].Install(vicPfx(k), core.OpCDPStamp, t0, time.Hour, 0)
		pt.Keys.SetStampKey(topology.ASN(201+k), key)
	}
	peer = mustRouter(core.RouterOptions{Tables: pt, Seed: 1})
	for k := 0; k < 16; k++ {
		key := make([]byte, 16)
		key[0] = byte(k + 1)
		vt := core.NewTables(topology.ASN(201+k), tp.Pfx2AS())
		vt.In[core.TableInDst].Install(vicPfx(k), core.OpCDPVerify, t0, time.Hour, 0)
		vt.Keys.SetVerifyKey(1, key)
		victims[k] = mustRouter(core.RouterOptions{Tables: vt, Seed: int64(2 + k)})
	}
	return peer, victims, t0.Add(time.Minute)
}

// stampVerifyManyFlows is the hostile round trip: every batch carries
// 64 never-before-seen sources spread over the peer's 256 prefixes,
// destined to 16 victims with 16 distinct stamp keys. Outbound runs as
// one batch at the peer; survivors are dispatched to their victim's
// inbound batch, mirroring a border router fanning verified traffic
// out to its customers.
func stampVerifyManyFlows(b *testing.B) {
	peer, victims, now := manyFlowsSetup(b)
	const batchSize = 64
	raw := make([]*packet.IPv4, batchSize)
	pkts := make([]core.MarkCarrier, batchSize)
	for i := range raw {
		raw[i] = &packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Payload: []byte("benchmark payload!")}
		pkts[i] = core.V4{P: raw[i]}
	}
	var buckets [16][]core.MarkCarrier
	for k := range buckets {
		buckets[k] = make([]core.MarkCarrier, 0, batchSize)
	}
	out := make([]core.Verdict, 0, batchSize)
	var ctr uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for _, p := range raw {
			ctr += 0x9e3779b97f4a7c15
			v := ctr ^ ctr>>29
			p.Src = netip.AddrFrom4([4]byte{10, byte(v >> 16), byte(v >> 8), byte(v)})
			p.Dst = netip.AddrFrom4([4]byte{172, 16, byte(v>>24) & 15, byte(v >> 32)})
		}
		out = peer.ProcessOutboundBatch(pkts, now, out[:0])
		for k := range buckets {
			buckets[k] = buckets[k][:0]
		}
		for j, v := range out {
			if v != core.VerdictPassStamped {
				b.Fatalf("outbound %v", v)
			}
			k := raw[j].Dst.As4()[2]
			buckets[k] = append(buckets[k], pkts[j])
		}
		for k := range buckets {
			if len(buckets[k]) == 0 {
				continue
			}
			out = victims[k].ProcessInboundBatch(buckets[k], now, out[:0])
			for _, v := range out {
				if v != core.VerdictPassVerified {
					b.Fatalf("inbound %v", v)
				}
			}
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpps")
}

// idleOutbound measures the no-invocation fast path: table snapshots
// loaded, idle bounds checked, nothing else.
func idleOutbound(b *testing.B) {
	r := idleRouter(b)
	now := time.Unix(0, 0).UTC().Add(time.Minute)
	p := &packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr("10.1.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
		Payload: []byte("x")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ProcessOutbound(core.V4{P: p}, now)
	}
	if r.Stats().MACsComputed != 0 {
		b.Fatal("idle path ran crypto")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpps")
}

// idleRouter builds a router with keys installed but no invocation
// scheduled anywhere.
func idleRouter(tb testing.TB) *core.BorderRouter {
	tb.Helper()
	tp := topology.New()
	tp.AddAS(1)
	tp.AddPrefix(1, netip.MustParsePrefix("10.1.0.0/16"))
	tp.AddAS(3)
	tp.AddPrefix(3, netip.MustParsePrefix("10.3.0.0/16"))
	tab := core.NewTables(1, tp.Pfx2AS())
	tab.Keys.SetStampKey(3, make([]byte, 16))
	return mustRouter(core.RouterOptions{Tables: tab, Seed: 1})
}

// BenchmarkStampVerifyV4 measures software data-plane throughput for
// the full stamp+verify path (§VI-C2 compares against 8 Mpps/core
// hardware AES-CMAC).
func BenchmarkStampVerifyV4(b *testing.B) { stampVerifySerial(b) }

// BenchmarkStampVerifyV4Parallel measures multi-core data-plane
// scaling: every forwarding goroutine runs the full stamp+verify path
// against the same router pair (shared tables, atomic counters). The
// Mpps metric divided by the serial bench's shows the speedup.
func BenchmarkStampVerifyV4Parallel(b *testing.B) { stampVerifyParallel(b) }

// BenchmarkStampVerifyV4Batch measures the burst entry points
// (ProcessOutboundBatch/ProcessInboundBatch).
func BenchmarkStampVerifyV4Batch(b *testing.B) { stampVerifyBatch(b) }

// BenchmarkStampVerifyV4ManyFlows measures the burst entry points
// under the hostile shape: millions of distinct sources (cold address
// memos, full LPM walks) and 16 alternating stamp keys (key-run splits,
// cold key caches).
func BenchmarkStampVerifyV4ManyFlows(b *testing.B) { stampVerifyManyFlows(b) }

// dataPlaneBaseline is the committed allocation budget the data plane
// must not regress above (BENCH_baseline.json).
type dataPlaneBaseline struct {
	AllocsPerStampedPacket float64 `json:"allocs_per_stamped_packet"`
	IdleAllocsPerPacket    float64 `json:"idle_allocs_per_packet"`
}

// TestDataPlaneBudget enforces the data-plane resource contract on
// every test run: the idle path computes no CMACs and allocates
// nothing, and the stamped path's allocations stay within the
// committed baseline.
func TestDataPlaneBudget(t *testing.T) {
	var base dataPlaneBaseline
	benchgate.Load(t, "BENCH_baseline.json", "", &base)

	now := time.Unix(0, 0).UTC().Add(time.Minute)
	idle := idleRouter(t)
	p := &packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr("10.1.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
		Payload: []byte("x")}
	idleAllocs := testing.AllocsPerRun(2000, func() {
		if v := idle.ProcessOutbound(core.V4{P: p}, now); v != core.VerdictPass {
			t.Fatalf("idle outbound %v", v)
		}
		if v := idle.ProcessInbound(core.V4{P: p}, now); v != core.VerdictPass {
			t.Fatalf("idle inbound %v", v)
		}
	})
	if macs := idle.Stats().MACsComputed; macs != 0 {
		t.Fatalf("idle path computed %d MACs, want 0", macs)
	}
	if idleAllocs > base.IdleAllocsPerPacket {
		t.Fatalf("idle path allocates %.1f/packet, budget %.1f", idleAllocs, base.IdleAllocsPerPacket)
	}

	peer, victim, now := dataPlanePair(t)
	q := &packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr("10.1.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
		Payload: []byte("benchmark payload!")}
	stampAllocs := testing.AllocsPerRun(2000, func() {
		if v := peer.ProcessOutbound(core.V4{P: q}, now); v != core.VerdictPassStamped {
			t.Fatalf("outbound %v", v)
		}
		if v := victim.ProcessInbound(core.V4{P: q}, now); v != core.VerdictPassVerified {
			t.Fatalf("inbound %v", v)
		}
	})
	if stampAllocs > base.AllocsPerStampedPacket {
		t.Fatalf("stamped path allocates %.1f/packet, budget %.1f",
			stampAllocs, base.AllocsPerStampedPacket)
	}
}

// dataPlaneRow is one measured shape in BENCH_dataplane.json.
type dataPlaneRow struct {
	NsPerOp     float64 `json:"ns_per_op"`
	Mpps        float64 `json:"mpps"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// dataPlaneReport is the committed BENCH_dataplane.json layout, shared
// by the regenerating report and the throughput floor gate.
type dataPlaneReport struct {
	GeneratedBy   string       `json:"generated_by"`
	NumCPU        int          `json:"num_cpu"`
	ParallelProcs int          `json:"parallel_procs"`
	PaperMpps     float64      `json:"paper_mpps_per_core"`
	Serial        dataPlaneRow `json:"serial"`
	Parallel      dataPlaneRow `json:"parallel"`
	Batch         dataPlaneRow `json:"batch"`
	ManyFlows     dataPlaneRow `json:"many_flows"`
	Idle          dataPlaneRow `json:"idle"`
}

// TestDataPlaneReport regenerates BENCH_dataplane.json: the serial vs
// parallel vs batch Mpps comparison, the hostile many-flows/many-keys
// shape, plus the idle-path cost, measured with the standard benchmark
// driver. Gated behind an environment variable because it runs real
// benchmarks; `make bench-dataplane` sets it.
func TestDataPlaneReport(t *testing.T) {
	if os.Getenv("DISCS_DATAPLANE_REPORT") == "" {
		t.Skip("set DISCS_DATAPLANE_REPORT=1 (make bench-dataplane) to regenerate BENCH_dataplane.json")
	}

	mk := func(r testing.BenchmarkResult) dataPlaneRow {
		return dataPlaneRow{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			Mpps:        r.Extra["Mpps"],
			AllocsPerOp: r.AllocsPerOp(),
		}
	}

	serial := testing.Benchmark(stampVerifySerial)
	batch := testing.Benchmark(stampVerifyBatch)
	many := testing.Benchmark(stampVerifyManyFlows)
	idle := testing.Benchmark(idleOutbound)

	// The parallel run needs more than one P to mean anything; mirror
	// `-cpu 4` when the environment gives us fewer.
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		procs = 4
	}
	prev := runtime.GOMAXPROCS(procs)
	parallel := testing.Benchmark(stampVerifyParallel)
	runtime.GOMAXPROCS(prev)

	report := dataPlaneReport{
		GeneratedBy:   "make bench-dataplane",
		NumCPU:        runtime.NumCPU(),
		ParallelProcs: procs,
		PaperMpps:     8, // §VI-C2: hardware AES-CMAC reference
		Serial:        mk(serial),
		Parallel:      mk(parallel),
		Batch:         mk(batch),
		ManyFlows:     mk(many),
		Idle:          mk(idle),
	}
	benchgate.Write(t, "BENCH_dataplane.json", report)
	t.Logf("serial %.3f / parallel %.3f / batch %.3f / many-flows %.3f Mpps, idle %.1f ns/op",
		report.Serial.Mpps, report.Parallel.Mpps, report.Batch.Mpps, report.ManyFlows.Mpps,
		report.Idle.NsPerOp)
}

// TestDataPlaneGate floor-gates data-plane throughput against the
// committed BENCH_dataplane.json: the friendly batch shape and the
// hostile many-flows shape must each hold ≥50% of their committed Mpps
// at zero allocations per packet. Environment-gated (`make check` sets
// it) so plain `go test ./...` stays robust on slow or contended
// machines; the wide slack absorbs machine-to-machine variance while
// still catching real regressions like a dead cache or a re-serialized
// burst loop.
func TestDataPlaneGate(t *testing.T) {
	if os.Getenv("DISCS_DATAPLANE_GATE") == "" {
		t.Skip("set DISCS_DATAPLANE_GATE=1 (make check) to run the throughput floor gate")
	}
	var base dataPlaneReport
	benchgate.Load(t, "BENCH_dataplane.json", "make bench-dataplane", &base)

	batch := testing.Benchmark(stampVerifyBatch)
	many := testing.Benchmark(stampVerifyManyFlows)
	if a := batch.AllocsPerOp(); a != 0 {
		t.Fatalf("batch shape allocates %d/op, want 0", a)
	}
	if a := many.AllocsPerOp(); a != 0 {
		t.Fatalf("many-flows shape allocates %d/op, want 0", a)
	}
	benchgate.Floor(t, "batch stamp+verify (Mpps)", batch.Extra["Mpps"], base.Batch.Mpps, 0.5)
	benchgate.Floor(t, "many-flows stamp+verify (Mpps)", many.Extra["Mpps"], base.ManyFlows.Mpps, 0.5)
	t.Logf("batch %.3f Mpps (committed %.3f), many-flows %.3f Mpps (committed %.3f)",
		batch.Extra["Mpps"], base.Batch.Mpps, many.Extra["Mpps"], base.ManyFlows.Mpps)
}

// BenchmarkForgery is the §VI-E1 experiment: random 29-bit marks
// against the verifier; the metric is accepted forgeries (expected 0
// at bench scale, since P = 2^-29 per guess).
func BenchmarkForgery(b *testing.B) {
	_, victim, now := dataPlanePair(b)
	rng := rand.New(rand.NewSource(1))
	accepted := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &packet.IPv4{
			TTL: 64, Protocol: packet.ProtoUDP,
			Src: netip.MustParseAddr("10.1.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
			Payload: []byte("forged"),
		}
		p.SetMark(rng.Uint32())
		if !victim.ProcessInbound(core.V4{P: p}, now).Dropped() {
			accepted++
		}
	}
	b.ReportMetric(float64(accepted), "forgeries-accepted")
}

// BenchmarkAblationOnDemand quantifies the on-demand design (§IV-E):
// data-plane work per packet with no invocation active vs. an active
// CDP invocation. The no-invocation path must be crypto-free.
func BenchmarkAblationOnDemand(b *testing.B) {
	mk := func(invoked bool) *core.BorderRouter {
		tp := topology.New()
		tp.AddAS(1)
		tp.AddPrefix(1, netip.MustParsePrefix("10.1.0.0/16"))
		tp.AddAS(3)
		tp.AddPrefix(3, netip.MustParsePrefix("10.3.0.0/16"))
		t0 := time.Unix(0, 0).UTC()
		tab := core.NewTables(1, tp.Pfx2AS())
		tab.Keys.SetStampKey(3, make([]byte, 16))
		if invoked {
			tab.In[core.TableOutDst].Install(netip.MustParsePrefix("10.3.0.0/16"),
				core.OpCDPStamp, t0, time.Hour, 0)
		}
		return mustRouter(core.RouterOptions{Tables: tab, Seed: 1})
	}
	now := time.Unix(0, 0).UTC().Add(time.Minute)
	pkt := func() *packet.IPv4 {
		return &packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
			Src: netip.MustParseAddr("10.1.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
			Payload: []byte("x")}
	}
	b.Run("idle", func(b *testing.B) {
		r := mk(false)
		p := pkt()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.ProcessOutbound(core.V4{P: p}, now)
		}
		if r.Stats().MACsComputed != 0 {
			b.Fatal("idle path ran crypto")
		}
	})
	b.Run("invoked", func(b *testing.B) {
		r := mk(true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.ProcessOutbound(core.V4{P: pkt()}, now)
		}
	})
}

// BenchmarkAblationDPFirst measures the §IV-E2 suggestion that DP
// should accompany CDP so spoofed packets are dropped before reaching
// the crypto stage: MACs computed per 1000 spoofed packets with and
// without the DP pre-filter.
func BenchmarkAblationDPFirst(b *testing.B) {
	run := func(withDP bool) float64 {
		tp := topology.New()
		tp.AddAS(1)
		tp.AddPrefix(1, netip.MustParsePrefix("10.1.0.0/16"))
		tp.AddAS(3)
		tp.AddPrefix(3, netip.MustParsePrefix("10.3.0.0/16"))
		t0 := time.Unix(0, 0).UTC()
		v := netip.MustParsePrefix("10.3.0.0/16")
		tab := core.NewTables(1, tp.Pfx2AS())
		tab.Keys.SetStampKey(3, make([]byte, 16))
		tab.In[core.TableOutDst].Install(v, core.OpCDPStamp, t0, time.Hour, 0)
		if withDP {
			tab.In[core.TableOutDst].Install(v, core.OpDPFilter, t0, time.Hour, 0)
		}
		r := mustRouter(core.RouterOptions{Tables: tab, Seed: 1})
		now := t0.Add(time.Minute)
		for i := 0; i < 1000; i++ {
			p := &packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
				Src: netip.MustParseAddr("192.0.2.7"), // spoofed
				Dst: netip.MustParseAddr("10.3.0.1"), Payload: []byte("spoof")}
			r.ProcessOutbound(core.V4{P: p}, now)
		}
		return float64(r.Stats().MACsComputed)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		without = run(false)
		with = run(true)
	}
	b.ReportMetric(without, "MACs/1k-CDP-only")
	b.ReportMetric(with, "MACs/1k-DP+CDP")
}

// BenchmarkAblationMarks compares DISCS's single destination mark with
// Passport's per-hop marks: CMAC computations per packet for a mean
// AS-path length of 4 intermediate ASes.
func BenchmarkAblationMarks(b *testing.B) {
	const pathLen = 4
	key := make([]byte, 16)
	tp := topology.New()
	tp.AddAS(1)
	tp.AddPrefix(1, netip.MustParsePrefix("10.1.0.0/16"))
	tab := core.NewTables(1, tp.Pfx2AS())
	tab.Keys.SetStampKey(1, key)
	c := tab.Keys.StampKey(1)
	p := &packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr("10.1.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
		Payload: []byte("marks")}
	b.Run("discs-1-mark", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.V4{P: p}.Stamp(c)
		}
	})
	b.Run("passport-per-hop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for h := 0; h < pathLen+1; h++ {
				core.V4{P: p}.Stamp(c)
			}
		}
	})
}

// BenchmarkAblationPriority quantifies the §I MEF-vs-DISCS uplink
// claim as metrics: legit goodput with CDP-driven priority queueing
// vs. without classification, under a 5× overload.
func BenchmarkAblationPriority(b *testing.B) {
	const legitPPS, attackPPS, capacity = 300, 5000, 1000
	mkTrace := func(classified bool) ([]qos.Packet, map[int]bool) {
		var pkts []qos.Packet
		legit := map[int]bool{}
		id := 0
		add := func(class qos.Class, pps int, isLegit bool) {
			gap := time.Second / time.Duration(pps)
			for i := 0; i < pps; i++ {
				c := class
				if !classified {
					c = qos.Low
				}
				pkts = append(pkts, qos.Packet{Arrival: time.Duration(i) * gap, Class: c, ID: id})
				legit[id] = isLegit
				id++
			}
		}
		add(qos.High, legitPPS, true)
		add(qos.Low, attackPPS, false)
		return pkts, legit
	}
	q := qos.Queue{ServicePPS: capacity, BufferPerClass: 32}
	goodput := func(classified bool) float64 {
		pkts, legit := mkTrace(classified)
		out, err := q.Run(pkts)
		if err != nil {
			b.Fatal(err)
		}
		deliv, offered := 0, 0
		for _, o := range out {
			if legit[o.Packet.ID] {
				offered++
				if !o.Dropped {
					deliv++
				}
			}
		}
		return float64(deliv) / float64(offered)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = goodput(true)
		without = goodput(false)
	}
	b.ReportMetric(100*with, "discs-goodput%")
	b.ReportMetric(100*without, "mef-goodput%")
}

// BenchmarkControlPlane measures the full §IV lifecycle — BGP
// convergence, Ad propagation, peering, key negotiation — for a
// 9-AS Internet with 3 DASes.
func BenchmarkControlPlane(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tp := topology.New()
		asns := []topology.ASN{10, 20, 100, 200, 300, 1001, 1002, 1003, 1004}
		for _, a := range asns {
			tp.AddAS(a)
		}
		tp.Link(10, 20, topology.PeerToPeer)
		tp.Link(100, 10, topology.CustomerToProvider)
		tp.Link(200, 10, topology.CustomerToProvider)
		tp.Link(300, 20, topology.CustomerToProvider)
		tp.Link(1001, 100, topology.CustomerToProvider)
		tp.Link(1002, 100, topology.CustomerToProvider)
		tp.Link(1003, 200, topology.CustomerToProvider)
		tp.Link(1004, 300, topology.CustomerToProvider)
		for j, a := range asns {
			tp.AddPrefix(a, netip.MustParsePrefix(netip.AddrFrom4([4]byte{10, byte(j + 1), 0, 0}).String()+"/16"))
		}
		net, err := bgp.BuildNetwork(tp, time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		net.OriginateAll()
		if err := net.Converge(); err != nil {
			b.Fatal(err)
		}
		sys := core.NewSystem(net, core.DefaultConfig())
		for k, a := range []topology.ASN{1001, 1003, 300} {
			if _, err := sys.Deploy(a, int64(k+1)); err != nil {
				b.Fatal(err)
			}
		}
		if err := sys.Settle(); err != nil {
			b.Fatal(err)
		}
		if len(sys.Controllers[1001].Peers()) != 2 {
			b.Fatal("peering incomplete")
		}
	}
}

// BenchmarkWireExhaustion runs the §I bandwidth-exhaustion experiment
// on the packet-level data plane (internal/wire): a botnet inside a
// peer DAS floods the victim's finite uplink. Metrics: legitimate
// goodput (%) during the flood and after the victim invokes DP.
func BenchmarkWireExhaustion(b *testing.B) {
	var during, after float64
	for i := 0; i < b.N; i++ {
		tp := topology.New()
		for j := topology.ASN(1); j <= 4; j++ {
			tp.AddAS(j)
		}
		for _, c := range []topology.ASN{2, 3, 4} {
			tp.Link(c, 1, topology.CustomerToProvider)
		}
		for asn, pfx := range map[topology.ASN]string{
			1: "10.1.0.0/16", 2: "10.2.0.0/16", 3: "10.3.0.0/16", 4: "10.4.0.0/16",
		} {
			tp.AddPrefix(asn, netip.MustParsePrefix(pfx))
		}
		net, err := bgp.BuildNetwork(tp, time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		net.OriginateAll()
		if err := net.Converge(); err != nil {
			b.Fatal(err)
		}
		sys := core.NewSystem(net, core.DefaultConfig())
		for k, asn := range []topology.ASN{2, 3} {
			if _, err := sys.Deploy(asn, int64(k+1)); err != nil {
				b.Fatal(err)
			}
		}
		sys.Settle()
		dn, err := wire.New(sys, wire.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		up := dn.Link(1, 3)
		up.Bps = 128_000
		up.MaxBacklog = 20 * time.Millisecond

		const legitN, floodN = 400, 6000
		run := func() float64 {
			dn.ResetCounters()
			gapL := time.Second / time.Duration(legitN)
			gapF := time.Second / time.Duration(floodN)
			now := sys.Net.Sim.Now()
			for k := 0; k < legitN; k++ {
				k := k
				sys.Net.Sim.Schedule(now+time.Duration(k)*gapL, func() {
					dn.Inject(4, &packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
						Src: netip.MustParseAddr("10.4.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
						Payload: make([]byte, 36)})
				})
			}
			for k := 0; k < floodN; k++ {
				k := k
				sys.Net.Sim.Schedule(now+time.Duration(k)*gapF, func() {
					dn.Inject(2, &packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP,
						Src: netip.MustParseAddr("198.51.100.7"), Dst: netip.MustParseAddr("10.3.0.1"),
						Payload: make([]byte, 36)})
				})
			}
			sys.Settle()
			legit := 0
			for _, d := range dn.Deliveries() {
				if d.Pkt.Src == netip.MustParseAddr("10.4.0.10") {
					legit++
				}
			}
			return 100 * float64(legit) / legitN
		}
		during = run()
		victim := sys.Controllers[3]
		victim.Invoke(core.Invocation{
			Prefixes: victim.OwnPrefixes(), Function: core.DP, Duration: 240 * time.Hour,
		})
		sys.Settle()
		after = run()
	}
	b.ReportMetric(during, "goodput-under-flood%")
	b.ReportMetric(after, "goodput-defended%")
}

// BenchmarkEndToEndAttack measures flow-level attack simulation
// throughput through the packet data plane (the discs-sim scenario).
func BenchmarkEndToEndAttack(b *testing.B) {
	tp, err := topology.GenerateInternet(topology.GenConfig{
		NumASes: 100, NumPrefixes: 300, ZipfExponent: 1.0, TierOneCount: 5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	net, err := bgp.BuildNetwork(tp, time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		b.Fatal(err)
	}
	sys := core.NewSystem(net, core.DefaultConfig())
	deployers := tp.BySizeDesc()[:6]
	for i, a := range deployers {
		if _, err := sys.Deploy(a, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	sys.Settle()
	victim := sys.Controllers[deployers[len(deployers)-1]]
	victim.Invoke(
		core.Invocation{Prefixes: victim.OwnPrefixes(), Function: core.DP, Duration: 240 * time.Hour},
		core.Invocation{Prefixes: victim.OwnPrefixes(), Function: core.CDP, Duration: 240 * time.Hour},
	)
	sys.Settle()
	sys.Net.Sim.After(core.DefaultGrace+time.Second, func() {})
	sys.Settle()

	sampler := attack.NewSampler(tp)
	rng := rand.New(rand.NewSource(2))
	flows := make([]attack.Flow, 20)
	for i := range flows {
		flows[i] = sampler.DrawFlowForVictim(attack.DDDoS, victim.AS, rng)
	}
	b.ResetTimer()
	var last attack.Result
	for i := 0; i < b.N; i++ {
		res, err := attack.Run(sys, flows, 5, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(100*last.DropRate(), "filtered%")
}
