package discs_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"discs/internal/benchgate"
	"discs/internal/packet"
	"discs/internal/service"
)

// Service-plane throughput measurement behind `make bench-service`:
// a real 2-node loopback fleet (TCP sockets, peering, DP+CDP
// deployed), comparing the per-packet SendPacket path against the
// batch path (ProcessOutboundBatch → FrameKindDataBurst trains →
// inbound worker pool). Both numbers are end-to-end: the clock stops
// when the victim's node.rx_delivered has counted every packet, so
// receive-side syscalls and verification are priced in.

// serviceBenchReport is the committed BENCH_service.json layout.
type serviceBenchReport struct {
	GeneratedBy   string  `json:"generated_by"`
	NumCPU        int     `json:"num_cpu"`
	Burst         int     `json:"burst"`
	PerPktPackets int     `json:"per_packet_packets"`
	BatchPackets  int     `json:"batch_packets"`
	PerPacketMpps float64 `json:"per_packet_mpps"`
	BatchMpps     float64 `json:"batch_mpps"`
	Speedup       float64 `json:"speedup"`
}

// serviceFleet boots a protected 2-node fleet ready for traffic.
func serviceFleet(tb testing.TB) *service.Fleet {
	tb.Helper()
	f, err := service.NewFleet(service.FleetOptions{N: 2})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(f.Close)
	if err := f.WaitReady(15 * time.Second); err != nil {
		tb.Fatal(err)
	}
	if err := f.Protect(1, 15*time.Second); err != nil {
		tb.Fatal(err)
	}
	// Let the invocation grace interval lapse so verification is strict.
	time.Sleep(100 * time.Millisecond)
	return f
}

func deliveredCounter(f *service.Fleet) uint64 {
	v := f.Nodes[1]
	return v.Stats().Get(fmt.Sprintf("as%d.%s", v.AS(), service.MetricNodeRxDelivered))
}

func waitDelivered(tb testing.TB, f *service.Fleet, want uint64) {
	tb.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for deliveredCounter(f) < want {
		if time.Now().After(deadline) {
			tb.Fatalf("delivered %d/%d after 30s", deliveredCounter(f), want)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// measurePerPacket drives n packets through the per-packet SendPacket
// path with the same backpressure handling the burst loadgen uses, and
// returns the end-to-end Mpps (send start → all n delivered).
func measurePerPacket(tb testing.TB, f *service.Fleet, n int) float64 {
	tb.Helper()
	src, dstName := f.Nodes[0], f.Nodes[1].Name()
	pkt := &packet.IPv4{
		TTL: 64, Protocol: 17,
		Src:     service.FleetAddr(0, 20),
		Dst:     service.FleetAddr(1, 10),
		Payload: []byte("burst"),
	}
	base := deliveredCounter(f)
	begin := time.Now()
	for sent := 0; sent < n; {
		if _, ok := src.SendPacket(dstName, pkt); ok {
			sent++
		} else {
			time.Sleep(200 * time.Microsecond) // transport backpressure
		}
	}
	waitDelivered(tb, f, base+uint64(n))
	return float64(n) / time.Since(begin).Seconds() / 1e6
}

// measureBatch drives n packets through the batch entry points and
// returns the end-to-end Mpps.
func measureBatch(tb testing.TB, f *service.Fleet, n, burst int) float64 {
	tb.Helper()
	base := deliveredCounter(f)
	begin := time.Now()
	rep := f.LoadgenBurst(0, 1, n, burst)
	if rep.Sent != n {
		tb.Fatalf("burst loadgen accepted %d/%d packets", rep.Sent, n)
	}
	waitDelivered(tb, f, base+uint64(n))
	return float64(n) / time.Since(begin).Seconds() / 1e6
}

func measureServiceThroughput(tb testing.TB, perPktN, batchN, burst int) serviceBenchReport {
	f := serviceFleet(tb)
	// Interleave a warmup of each shape, then measure.
	measurePerPacket(tb, f, perPktN/10)
	measureBatch(tb, f, batchN/10, burst)
	rep := serviceBenchReport{
		Burst:         burst,
		PerPktPackets: perPktN,
		BatchPackets:  batchN,
		PerPacketMpps: measurePerPacket(tb, f, perPktN),
		BatchMpps:     measureBatch(tb, f, batchN, burst),
	}
	rep.Speedup = rep.BatchMpps / rep.PerPacketMpps
	return rep
}

// TestServiceReport regenerates BENCH_service.json (`make
// bench-service-report` sets the environment gate).
func TestServiceReport(t *testing.T) {
	if os.Getenv("DISCS_SERVICE_REPORT") == "" {
		t.Skip("set DISCS_SERVICE_REPORT=1 (make bench-service-report) to regenerate BENCH_service.json")
	}
	rep := measureServiceThroughput(t, 50_000, 400_000, 256)
	rep.GeneratedBy = "make bench-service-report"
	rep.NumCPU = runtime.NumCPU()
	benchgate.Write(t, "BENCH_service.json", rep)
	t.Logf("per-packet %.3f Mpps, batch %.3f Mpps — %.1fx", rep.PerPacketMpps, rep.BatchMpps, rep.Speedup)
}

// TestServiceGate floor-gates the live service data plane against the
// committed BENCH_service.json (`make check` sets the environment
// gate): the batch path must hold ≥50% of its committed Mpps, and the
// batch-over-per-packet speedup must not collapse (≥half the committed
// ratio, which itself must be ≥5× — the number this PR's pipeline
// exists to deliver). Wide slack absorbs loaded-machine variance; a
// re-serialized inbound path or a lost train coalescing shows up as a
// multiple, not a percentage.
func TestServiceGate(t *testing.T) {
	if os.Getenv("DISCS_SERVICE_GATE") == "" {
		t.Skip("set DISCS_SERVICE_GATE=1 (make check) to run the service throughput floor gate")
	}
	var base serviceBenchReport
	benchgate.Load(t, "BENCH_service.json", "make bench-service-report", &base)
	if base.Speedup < 5 {
		t.Fatalf("committed speedup %.2fx < 5x — BENCH_service.json predates the batch pipeline", base.Speedup)
	}
	rep := measureServiceThroughput(t, base.PerPktPackets/2, base.BatchPackets/2, base.Burst)
	benchgate.Floor(t, "service batch path (Mpps)", rep.BatchMpps, base.BatchMpps, 0.5)
	benchgate.Floor(t, "service batch/per-packet speedup (x)", rep.Speedup, base.Speedup, 0.5)
	t.Logf("per-packet %.3f Mpps, batch %.3f Mpps — %.1fx (committed %.3f Mpps, %.1fx)",
		rep.PerPacketMpps, rep.BatchMpps, rep.Speedup, base.BatchMpps, base.Speedup)
}
