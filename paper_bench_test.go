// Paper-scale end-to-end benchmark: the full `-paper` scenario of
// cmd/discs-sim (44 036-AS Internet, BGP convergence, 10-DAS
// deployment, paced d-DDoS attack, invocation) timed under the
// parallel engine at a given worker count. `make bench-paper` runs the
// wall-clock regression gate against the committed BENCH_paper.json;
// `make bench-paper-report` regenerates the file with a 1/2/4/8-worker
// scaling sweep (see EXPERIMENTS.md for the committed table and the
// hardware caveat — speedup requires cores).
package discs_test

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"discs/internal/attack"
	"discs/internal/benchgate"
	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/obs"
	"discs/internal/parsim"
	"discs/internal/topology"
)

const (
	paperBenchDAS     = 10
	paperBenchFlows   = 200
	paperBenchPerFlow = 10
	paperBenchWaves   = 8
)

// paperWorkerRun is one scenario execution at a fixed worker count.
type paperWorkerRun struct {
	Workers   int     `json:"workers"`
	TotalS    float64 `json:"total_s"`
	ConvergeS float64 `json:"converge_s"`
	DeployS   float64 `json:"deploy_s"`
	AttackS   float64 `json:"attack_s"`
	Epochs    uint64  `json:"epochs"`
	StallS    float64 `json:"stall_s"`
	SpeedupX  float64 `json:"speedup_vs_workers1"`
}

// paperBenchReport is the schema of BENCH_paper.json.
type paperBenchReport struct {
	GeneratedBy string           `json:"generated_by"`
	CPUs        int              `json:"cpus"`
	ASes        int              `json:"ases"`
	DAS         int              `json:"das"`
	Runs        []paperWorkerRun `json:"runs"`
}

// measurePaperRun executes the discs-sim `-paper` scenario in-process
// with the given worker count (0 = legacy serial scheduler) and
// returns phase timings plus the final metrics snapshot (the
// paper-scale differential compares the latter across worker counts).
// Every run is the same deterministic event sequence, so worker counts
// are directly comparable.
func measurePaperRun(t *testing.T, workers int) (paperWorkerRun, obs.Snapshot) {
	t.Helper()
	cfg := topology.DefaultGenConfig()
	topo, err := topology.GenerateInternet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var eng *parsim.Engine
	if workers > 0 {
		net.AssignShards(parsim.DefaultShards)
		eng, err = parsim.New(net.Sim, parsim.Options{Shards: parsim.DefaultShards, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
	}

	deployers := topo.BySizeDesc()[:paperBenchDAS]
	net.OriginateFirst(deployers...)
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	convS := time.Since(start).Seconds()

	start = time.Now()
	sys := core.NewSystem(net, core.DefaultConfig())
	for i, asn := range deployers {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}
	victim := deployers[len(deployers)-1]
	topo.WarmRoutes(deployers, 0)
	deployS := time.Since(start).Seconds()

	start = time.Now()
	sampler := attack.NewSampler(topo)
	rng := rand.New(rand.NewSource(cfg.Seed))
	flows := make([]attack.Flow, paperBenchFlows)
	for i := range flows {
		flows[i] = sampler.DrawFlowForVictim(attack.DDDoS, victim, rng)
	}
	if _, err := attack.RunPaced(sys, flows, paperBenchPerFlow, cfg.Seed, paperBenchWaves, time.Second); err != nil {
		t.Fatal(err)
	}
	vc := sys.Controllers[victim]
	if _, err := vc.Invoke(core.Invocation{
		Prefixes: vc.OwnPrefixes(), Function: core.DP, Duration: 24 * time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}
	if _, err := attack.RunPaced(sys, flows, paperBenchPerFlow, cfg.Seed+1, paperBenchWaves, time.Second); err != nil {
		t.Fatal(err)
	}
	attackS := time.Since(start).Seconds()

	run := paperWorkerRun{
		Workers:   workers,
		TotalS:    convS + deployS + attackS,
		ConvergeS: convS,
		DeployS:   deployS,
		AttackS:   attackS,
	}
	snap := sys.Stats()
	if eng != nil {
		run.Epochs = snap.Get(parsim.MetricEpochs)
		run.StallS = time.Duration(snap.Get(parsim.MetricStallNS)).Seconds()
	}
	return run, snap
}

// TestPaperBudget is the regression gate `make bench-paper` (part of
// `make check`) runs: the full paper scenario at -workers 1 must stay
// within 10% of the committed BENCH_paper.json. Gated behind an
// environment variable so plain `go test ./...` stays wall-clock
// independent across machines.
func TestPaperBudget(t *testing.T) {
	if os.Getenv("DISCS_PAPER_BENCH") == "" {
		t.Skip("set DISCS_PAPER_BENCH=1 (make bench-paper) to run the paper-scale scenario gate")
	}
	var base paperBenchReport
	benchgate.Load(t, "BENCH_paper.json", "make bench-paper-report", &base)
	var base1 *paperWorkerRun
	for i := range base.Runs {
		if base.Runs[i].Workers == 1 {
			base1 = &base.Runs[i]
		}
	}
	if base1 == nil {
		t.Fatal("BENCH_paper.json has no workers=1 entry")
	}
	run, _ := measurePaperRun(t, 1)
	budget := benchgate.Budget(t, "paper scenario at -workers 1 (s)", run.TotalS, base1.TotalS, 0.10)
	t.Logf("converge %.2fs + deploy %.2fs + attack %.2fs = %.2fs (budget %.2fs), %d epochs, stall %.2fs",
		run.ConvergeS, run.DeployS, run.AttackS, run.TotalS, budget, run.Epochs, run.StallS)
}

// TestPaperReport regenerates BENCH_paper.json with a worker scaling
// sweep (make bench-paper-report).
func TestPaperReport(t *testing.T) {
	if os.Getenv("DISCS_PAPER_REPORT") == "" {
		t.Skip("set DISCS_PAPER_REPORT=1 (make bench-paper-report) to regenerate BENCH_paper.json")
	}
	rep := paperBenchReport{
		GeneratedBy: "make bench-paper-report",
		CPUs:        runtime.NumCPU(),
		ASes:        topology.DefaultGenConfig().NumASes,
		DAS:         paperBenchDAS,
	}
	var t1 float64
	for _, w := range []int{1, 2, 4, 8} {
		run, _ := measurePaperRun(t, w)
		if w == 1 {
			t1 = run.TotalS
		}
		if t1 > 0 {
			run.SpeedupX = t1 / run.TotalS
		}
		rep.Runs = append(rep.Runs, run)
		t.Logf("workers %d: %.2fs (%.2fx), %d epochs, stall %.2fs",
			w, run.TotalS, run.SpeedupX, run.Epochs, run.StallS)
	}
	benchgate.Write(t, "BENCH_paper.json", rep)
	fmt.Println("wrote BENCH_paper.json")
}
