// Snapshot benchmark gate: the paper-scale scenario checkpointed at
// convergence must restore and run to a bit-identical end state under
// fault injection at 1 and 4 workers, and a 3-cell warm-start sweep
// from a deployed image must beat 3 cold runs by ≥3×. `make
// bench-snapshot` runs the wall-clock/image-size budgets against the
// committed BENCH_snapshot.json; `make bench-snapshot-report`
// regenerates the file. Env-gated like the other paper-scale gates so
// plain `go test ./...` stays wall-clock independent.
package discs_test

import (
	"bytes"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"discs/internal/attack"
	"discs/internal/benchgate"
	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/netsim"
	"discs/internal/parsim"
	"discs/internal/snapshot"
	"discs/internal/topology"
)

// snapshotBenchReport is the schema of BENCH_snapshot.json.
type snapshotBenchReport struct {
	GeneratedBy      string  `json:"generated_by"`
	CPUs             int     `json:"cpus"`
	ASes             int     `json:"ases"`
	DAS              int     `json:"das"`
	ConvergedImageMB float64 `json:"converged_image_mb"`
	DeployedImageMB  float64 `json:"deployed_image_mb"`
	CheckpointS      float64 `json:"checkpoint_s"`
	RestoreS         float64 `json:"restore_s"`
	ColdRunS         float64 `json:"cold_run_s"`
	Sweep3S          float64 `json:"sweep3_s"`
	WarmSpeedupX     float64 `json:"warm_speedup_x"`
}

// snapshotPaperPrologue is the cold half of the scenario: generate the
// paper-scale Internet, build, install the engine, and converge with
// jitter on every link — so the fault RNG streams sit at nonzero
// positions when the checkpoint is cut. Returns the cold prologue
// wall-clock (generate+build+converge: what a warm start skips).
func snapshotPaperPrologue(t *testing.T, workers int) (*bgp.Network, *parsim.Engine, []topology.ASN, float64) {
	t.Helper()
	start := time.Now()
	cfg := topology.DefaultGenConfig()
	topo, err := topology.GenerateInternet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net.AssignShards(parsim.DefaultShards)
	eng, err := parsim.New(net.Sim, parsim.Options{Shards: parsim.DefaultShards, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })

	net.Sim.SeedFaults(7)
	for _, l := range net.Sim.Links() {
		l.SetFaults(netsim.LinkFaults{JitterMax: 100 * time.Microsecond})
	}
	deployers := topo.BySizeDesc()[:paperBenchDAS]
	net.OriginateFirst(deployers...)
	if err := net.Converge(); err != nil {
		t.Fatal(err)
	}
	return net, eng, deployers, time.Since(start).Seconds()
}

// snapshotPaperAttack is the attack+invocation tail shared by the
// straight, restored and sweep runs.
func snapshotPaperAttack(t *testing.T, sys *core.System, deployers []topology.ASN, seed int64) {
	t.Helper()
	topo := sys.Net.Topo
	victim := deployers[len(deployers)-1]
	sampler := attack.NewSampler(topo)
	rng := rand.New(rand.NewSource(seed))
	flows := make([]attack.Flow, paperBenchFlows)
	for i := range flows {
		flows[i] = sampler.DrawFlowForVictim(attack.DDDoS, victim, rng)
	}
	if _, err := attack.RunPaced(sys, flows, paperBenchPerFlow, seed, paperBenchWaves, time.Second); err != nil {
		t.Fatal(err)
	}
	vc := sys.Controllers[victim]
	if _, err := vc.Invoke(core.Invocation{
		Prefixes: vc.OwnPrefixes(), Function: core.DP, Duration: 24 * time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}
	if _, err := attack.RunPaced(sys, flows, paperBenchPerFlow, seed+1, paperBenchWaves, time.Second); err != nil {
		t.Fatal(err)
	}
}

// snapshotPaperEpilogue deploys over lossy controller links and runs
// the attack tail. onDeployed, when non-nil, runs between deployment
// settling and the attack (where -snapshot cuts the deployed image).
// Returns the epilogue wall-clock and the stripped final stats.
func snapshotPaperEpilogue(t *testing.T, net *bgp.Network, deployers []topology.ASN,
	onDeployed func(sys *core.System)) (float64, map[string]uint64, map[string]int64) {
	t.Helper()
	start := time.Now()
	net.Sim.SetDefaultLinkFaults(netsim.LinkFaults{
		Loss: 0.05, Dup: 0.05, JitterMax: 500 * time.Microsecond,
	})
	sys := core.NewSystem(net, core.DefaultConfig())
	for i, asn := range deployers {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}
	net.Topo.WarmRoutes(deployers, 0)
	if onDeployed != nil {
		onDeployed(sys)
	}
	snapshotPaperAttack(t, sys, deployers, topology.DefaultGenConfig().Seed)
	counters, gauges := stripEngineMetrics(sys.Stats())
	return time.Since(start).Seconds(), counters, gauges
}

// measureSnapshotSuite runs the full paper-scale snapshot pipeline:
// the checkpoint/restore differential with fault injection at 1 and 4
// workers, and the 3-cell warm-start sweep. It fails the test on any
// divergence and returns the measured timings.
func measureSnapshotSuite(t *testing.T) snapshotBenchReport {
	t.Helper()
	cfg := topology.DefaultGenConfig()
	rep := snapshotBenchReport{
		GeneratedBy: "make bench-snapshot-report",
		CPUs:        runtime.NumCPU(),
		ASes:        cfg.NumASes,
		DAS:         paperBenchDAS,
	}
	var deployedImg []byte

	for _, workers := range []int{1, 4} {
		net, eng, deployers, coldPrologueS := snapshotPaperPrologue(t, workers)

		start := time.Now()
		var buf bytes.Buffer
		if err := snapshot.Write(&buf, &snapshot.World{Net: net, Eng: eng}); err != nil {
			t.Fatal(err)
		}
		ckptS := time.Since(start).Seconds()

		// Straight-through continues on the checkpointed world; at
		// workers=1 it also cuts the deployed image the sweep forks.
		var onDeployed func(sys *core.System)
		if workers == 1 {
			onDeployed = func(sys *core.System) {
				start := time.Now()
				var dbuf bytes.Buffer
				if err := snapshot.Write(&dbuf, &snapshot.World{Net: net, Eng: eng, Sys: sys}); err != nil {
					t.Fatal(err)
				}
				deployedImg = dbuf.Bytes()
				rep.DeployedImageMB = float64(len(deployedImg)) / 1e6
				t.Logf("deployed image: %.1f MB in %.2fs", rep.DeployedImageMB, time.Since(start).Seconds())
			}
		}
		epiS, c1, g1 := snapshotPaperEpilogue(t, net, deployers, onDeployed)

		start = time.Now()
		img, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		restored, err := snapshot.Restore(img, snapshot.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		restoreS := time.Since(start).Seconds()
		_, c2, g2 := snapshotPaperEpilogue(t, restored.Net, deployers, nil)
		if restored.Eng != nil {
			restored.Eng.Close()
		}
		diffSnapshots(t, "paper-snapshot", c1, c2, g1, g2, nil, nil)
		t.Logf("workers %d: prologue %.2fs, checkpoint %.2fs (%.1f MB), epilogue %.2fs, restore %.2fs — differential identical",
			workers, coldPrologueS, ckptS, float64(buf.Len())/1e6, epiS, restoreS)

		if workers == 1 {
			rep.ConvergedImageMB = float64(buf.Len()) / 1e6
			rep.CheckpointS = ckptS
			rep.RestoreS = restoreS
			rep.ColdRunS = coldPrologueS + epiS
		}
	}

	// Warm-start sweep: 3 cells forked from the deployed image, each a
	// fresh restore + journal-replay recovery + attack with its own
	// seed — what `discs-sim -restore img -sweep 3` does.
	img, err := snapshot.Read(bytes.NewReader(deployedImg))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for cell := 0; cell < 3; cell++ {
		world, err := snapshot.Restore(img, snapshot.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := world.Sys.RestartAll(); err != nil {
			t.Fatal(err)
		}
		if err := world.Sys.Settle(); err != nil {
			t.Fatal(err)
		}
		snapshotPaperAttack(t, world.Sys, world.Sys.Deployed(), cfg.Seed+int64(cell))
		if world.Eng != nil {
			world.Eng.Close()
		}
	}
	rep.Sweep3S = time.Since(start).Seconds()
	rep.WarmSpeedupX = 3 * rep.ColdRunS / rep.Sweep3S
	t.Logf("3-cell sweep %.2fs vs 3 cold runs %.2fs: %.1fx",
		rep.Sweep3S, 3*rep.ColdRunS, rep.WarmSpeedupX)
	return rep
}

// TestSnapshotBudget is the regression gate `make bench-snapshot`
// (part of `make check`) runs: checkpoint/restore wall-clock and image
// size within 10% of the committed BENCH_snapshot.json, warm-start
// sweep ≥3× faster than cold, and the paper-scale differential holds.
func TestSnapshotBudget(t *testing.T) {
	if os.Getenv("DISCS_SNAPSHOT_BENCH") == "" && os.Getenv("DISCS_SNAPSHOT_REPORT") == "" {
		t.Skip("set DISCS_SNAPSHOT_BENCH=1 (make bench-snapshot) to run the paper-scale snapshot gate")
	}
	var base snapshotBenchReport
	benchgate.Load(t, "BENCH_snapshot.json", "make bench-snapshot-report", &base)

	rep := measureSnapshotSuite(t)
	benchgate.Budget(t, "checkpoint wall-clock (s)", rep.CheckpointS, base.CheckpointS, 0.10)
	benchgate.Budget(t, "restore wall-clock (s)", rep.RestoreS, base.RestoreS, 0.10)
	benchgate.Budget(t, "converged image size (MB)", rep.ConvergedImageMB, base.ConvergedImageMB, 0.10)
	benchgate.Budget(t, "deployed image size (MB)", rep.DeployedImageMB, base.DeployedImageMB, 0.10)
	if rep.WarmSpeedupX < 3 {
		t.Fatalf("3-cell warm sweep only %.2fx faster than 3 cold runs, want ≥3x", rep.WarmSpeedupX)
	}
}

// TestSnapshotReport regenerates BENCH_snapshot.json
// (make bench-snapshot-report).
func TestSnapshotReport(t *testing.T) {
	if os.Getenv("DISCS_SNAPSHOT_REPORT") == "" {
		t.Skip("set DISCS_SNAPSHOT_REPORT=1 (make bench-snapshot-report) to regenerate BENCH_snapshot.json")
	}
	rep := measureSnapshotSuite(t)
	if rep.WarmSpeedupX < 3 {
		t.Fatalf("3-cell warm sweep only %.2fx faster than 3 cold runs, want ≥3x", rep.WarmSpeedupX)
	}
	benchgate.Write(t, "BENCH_snapshot.json", rep)
}
