# Standard targets for the DISCS reproduction.

GO ?= go

.PHONY: all build test test-race vet vet-obs check node-smoke bench bench-dataplane bench-obs bench-topo bench-topo-report bench-paper bench-paper-report bench-snapshot bench-snapshot-report bench-service bench-service-report bench-scenario bench-scenario-report diff-paper fuzz report figures cost sim examples cover clean

all: build check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

# Every stat counter must live in the obs registry: the old idiom of
# raw atomic uint64 counters outside internal/obs is a lint error.
# (atomic.Pointer/Bool and the router's rng/sampling ticks are fine —
# the rule targets the Add/Load/StoreUint64 counter style.)
vet-obs:
	@bad=$$(grep -rn --include='*.go' -E 'atomic\.(Add|Load|Store)Uint64\(' internal cmd examples 2>/dev/null | grep -v '^internal/obs/' || true); \
	if [ -n "$$bad" ]; then \
		echo "raw counter atomics outside internal/obs (use obs.Counter):"; \
		echo "$$bad"; exit 1; \
	fi

# The pre-merge gate: static analysis, the full suite under the race
# detector (with shuffled test order to catch order-dependent tests),
# the service-mode loopback smoke run, and the paper-scale topology and
# end-to-end budgets.
check: vet vet-obs test-race node-smoke bench-topo bench-paper bench-snapshot bench-dataplane-gate bench-service bench-scenario

# Off-simulator smoke: boot a 3-node loopback fleet over TCP+TLS,
# deploy DP+CDP, push legit/spoofed/raw flows, and verify the victim's
# live /metrics shows them verified/blocked/dropped (self-checking —
# nonzero exit on any miss). The -burst phase then pushes packet
# trains through the batch entry points over the same TLS transport.
node-smoke:
	$(GO) run ./cmd/discs-node -loadgen -nodes 3 -flows 25 -burst 256 -packets 50000 -timeout 45s

# Per-figure/table reproduction benches (bench_test.go at the root).
bench:
	$(GO) test -bench . -benchmem ./...

# Data-plane throughput report: serial vs parallel vs batch vs hostile
# many-flows Mpps into BENCH_dataplane.json. Fails if the idle path
# computes any CMAC or the allocations per stamped packet regress above
# BENCH_baseline.json.
bench-dataplane:
	DISCS_DATAPLANE_REPORT=1 $(GO) test -run 'TestDataPlane(Budget|Report)' -count=1 -v .

# Throughput floor gate: the batch and many-flows shapes must hold at
# least half of the committed BENCH_dataplane.json Mpps at 0 allocs/op.
bench-dataplane-gate:
	DISCS_DATAPLANE_GATE=1 $(GO) test -run 'TestDataPlaneGate' -count=1 -v .

# Service-plane throughput floor gate: a live 2-node loopback fleet's
# batch path (packet trains + inbound worker pool) must hold at least
# half the committed BENCH_service.json Mpps and at least half its
# committed batch-over-per-packet speedup (itself required ≥5x).
bench-service:
	DISCS_SERVICE_GATE=1 $(GO) test -run 'TestServiceGate' -count=1 -v .

# Regenerate BENCH_service.json (end-to-end per-packet vs batch Mpps).
bench-service-report:
	DISCS_SERVICE_REPORT=1 $(GO) test -run 'TestServiceReport' -count=1 -v .

# Observability overhead report: instrumented vs plain stamp+verify
# into BENCH_obs.json. Fails if instrumentation allocates or costs more
# than 5% ns/op.
bench-obs:
	DISCS_OBS_REPORT=1 $(GO) test -run 'TestObs(Budget|Report)' -count=1 -v .

# Paper-scale topology gate: generate + BGP network build + routing
# tree warm at 44,036 ASes must stay within 10% of the committed
# BENCH_topo.json, and a warm NextHop must stay allocation-free.
bench-topo:
	DISCS_TOPO_BENCH=1 $(GO) test -run 'TestTopoBudget' -count=1 -v .

# Regenerate BENCH_topo.json (best of two full runs).
bench-topo-report:
	DISCS_TOPO_REPORT=1 $(GO) test -run 'TestTopoReport' -count=1 -v .

# Paper-scale end-to-end gate: the full discs-sim -paper scenario at
# -workers 1 must stay within 10% of the committed BENCH_paper.json.
bench-paper:
	DISCS_PAPER_BENCH=1 $(GO) test -run 'TestPaperBudget' -count=1 -v -timeout 30m .

# Regenerate BENCH_paper.json with the 1/2/4/8-worker scaling sweep.
bench-paper-report:
	DISCS_PAPER_REPORT=1 $(GO) test -run 'TestPaperReport' -count=1 -v -timeout 60m .

# Paper-scale snapshot gate: checkpoint/restore wall-clock and image
# size within 10% of the committed BENCH_snapshot.json, the restored
# run bit-identical to straight-through at 1 and 4 workers under fault
# injection, and a 3-cell warm-start sweep ≥3× faster than 3 cold runs.
bench-snapshot:
	DISCS_SNAPSHOT_BENCH=1 $(GO) test -run 'TestSnapshotBudget' -count=1 -v -timeout 30m .

# Regenerate BENCH_snapshot.json.
bench-snapshot-report:
	DISCS_SNAPSHOT_REPORT=1 $(GO) test -run 'TestSnapshotReport' -count=1 -v -timeout 60m .

# Scenario-engine gate: a mid-size declarative campaign (pulse-wave
# onset, invocation, adaptive rotation, sustain) must finish within
# budget of the committed BENCH_scenario.json with the exact committed
# packet volume and dataset shape (the engine is deterministic).
bench-scenario:
	DISCS_SCENARIO_BENCH=1 $(GO) test -run 'TestScenarioBudget' -count=1 -v .

# Regenerate BENCH_scenario.json.
bench-scenario-report:
	DISCS_SCENARIO_REPORT=1 $(GO) test -run 'TestScenarioReport' -count=1 -v .

# Paper-scale differential: the 44,036-AS scenario at -workers 1 vs 4
# must produce byte-identical final metrics snapshots. (The mid-size
# fault-injected differential runs unconditionally in make check.)
diff-paper:
	DISCS_PAPER_DIFF=1 $(GO) test -run 'TestPaperDifferential' -count=1 -v -timeout 60m .

# Short fuzz pass over every parser (extend -fuzztime for deeper runs).
fuzz:
	$(GO) test ./internal/packet/ -fuzz FuzzParseIPv4 -fuzztime 15s
	$(GO) test ./internal/packet/ -fuzz FuzzParseIPv6 -fuzztime 15s
	$(GO) test ./internal/packet/ -fuzz FuzzScrubICMPv4 -fuzztime 15s
	$(GO) test ./internal/packet/ -fuzz FuzzFragmentReassemble -fuzztime 15s
	$(GO) test ./internal/core/ -fuzz FuzzDecodeControlMsg -fuzztime 15s
	$(GO) test ./internal/core/ -fuzz FuzzParseInvocation -fuzztime 15s
	$(GO) test ./internal/core/ -fuzz FuzzCtrlFrame -fuzztime 15s
	$(GO) test ./internal/flowexport/ -fuzz 'FuzzUnmarshal$$' -fuzztime 15s
	$(GO) test ./internal/flowexport/ -fuzz FuzzUnmarshalLabeled -fuzztime 15s
	$(GO) test ./internal/scenario/ -fuzz FuzzScenarioConfig -fuzztime 15s
	$(GO) test ./internal/securechan/ -fuzz FuzzOpen -fuzztime 15s
	$(GO) test ./internal/securechan/ -fuzz FuzzHandshakeFrames -fuzztime 15s
	$(GO) test ./internal/snapshot/ -fuzz FuzzRead -fuzztime 15s

# Paper-vs-measured reproduction artifacts.
report:
	$(GO) run ./cmd/discs-report

figures:
	$(GO) run ./cmd/discs-eval -fig all

cost:
	$(GO) run ./cmd/discs-cost

sim:
	$(GO) run ./cmd/discs-sim

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/reflection
	$(GO) run ./examples/alarm
	$(GO) run ./examples/incremental
	$(GO) run ./examples/priority
	$(GO) run ./examples/campaign
	$(GO) run ./examples/observability
	$(GO) run ./examples/scenario

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
