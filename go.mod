module discs

go 1.22
