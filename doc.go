// Package discs is a from-scratch Go reproduction of
//
//	"DISCS: A DIStributed Collaboration System for Inter-AS Spoofing
//	 Defense", Bingyang Liu and Jun Bi, ICPP 2015.
//
// The implementation lives under internal/ (one package per
// subsystem — see DESIGN.md for the inventory), the executables under
// cmd/, runnable examples under examples/, and the per-figure
// benchmark harness in bench_test.go at the repository root.
package discs
