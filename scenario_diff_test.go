// Differential tests for the scenario engine: a declarative campaign
// (pulse-wave onset, invocation, adaptive rotation, carpet-bombing,
// legit sanity traffic) must produce a bit-identical Result — phase
// outcomes, time-to-mitigation, and the labeled dataset — plus
// identical final counters and traces, at every worker count and when
// resumed from a checkpoint instead of run straight through. Reuses
// the oracle machinery from diff_test.go and the converged-world
// prologue from snapshot_diff_test.go.
package discs_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/netsim"
	"discs/internal/obs"
	"discs/internal/scenario"
	"discs/internal/snapshot"
)

// diffSpec is the campaign both differentials run: it exercises every
// phase kind that touches the data plane, including the adaptive
// attacker whose decisions depend on observed verdicts — the hardest
// thing to keep deterministic across schedules.
func diffSpec(t testing.TB) *scenario.Spec {
	t.Helper()
	spec, err := scenario.New("diff", 42).
		Legit("baseline", 4).
		Pulse("onset", 30, 5, 2, 100*time.Millisecond).
		Invoke("defend").
		Adaptive("rotate", scenario.StrategyRotate, 30, 5, 2, 100*time.Millisecond).
		Carpet("carpet", 20, 4, 2, 100*time.Millisecond).
		Legit("sanity", 4).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// scenarioEpilogue deploys DISCS over lossy controller links and runs
// diffSpec through the engine, returning the scenario Result alongside
// the stripped final counters, gauges and canonical trace.
func scenarioEpilogue(t testing.TB, net *bgp.Network) (*scenario.Result, map[string]uint64, map[string]int64, []obs.Event) {
	t.Helper()
	net.Sim.SetDefaultLinkFaults(netsim.LinkFaults{
		Loss: 0.05, Dup: 0.05, JitterMax: 500 * time.Microsecond,
	})
	sys := core.NewSystem(net, core.DefaultConfig())
	for i, asn := range net.Topo.BySizeDesc()[:6] {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		t.Fatal(err)
	}

	eng, err := scenario.NewEngine(scenario.Options{Spec: diffSpec(t), Sys: sys})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	counters, gauges := stripEngineMetrics(sys.Stats())
	return res, counters, gauges, sortTrace(sys.Registry().Tracer().Events())
}

func diffScenarioResults(t *testing.T, label string, r1, r2 *scenario.Result) {
	t.Helper()
	if len(r1.Phases) == 0 || r1.TTM == nil || !r1.TTM.Invoked {
		t.Fatalf("%s: degenerate result: %+v", label, r1)
	}
	if !reflect.DeepEqual(r1.Phases, r2.Phases) {
		for i := range r1.Phases {
			if !reflect.DeepEqual(r1.Phases[i], r2.Phases[i]) {
				t.Fatalf("%s: phase %d diverges:\n%+v\nvs\n%+v", label, i, r1.Phases[i], r2.Phases[i])
			}
		}
	}
	if !reflect.DeepEqual(r1.TTM, r2.TTM) {
		t.Fatalf("%s: TTM diverges: %+v vs %+v", label, r1.TTM, r2.TTM)
	}
	if !reflect.DeepEqual(r1.Dataset, r2.Dataset) {
		t.Fatalf("%s: datasets diverge (%d vs %d records)", label, len(r1.Dataset), len(r2.Dataset))
	}
}

// TestScenarioDifferentialWorkers: the same scenario run at 1 and 4
// workers yields a bit-identical Result and final obs snapshot.
func TestScenarioDifferentialWorkers(t *testing.T) {
	net1, _ := snapConverged(t, 1)
	r1, c1, g1, e1 := scenarioEpilogue(t, net1)
	net4, _ := snapConverged(t, 4)
	r4, c4, g4, e4 := scenarioEpilogue(t, net4)

	if c1["netsim.delivered"] == 0 {
		t.Fatal("scenario delivered nothing")
	}
	diffScenarioResults(t, "workers", r1, r4)
	diffSnapshots(t, "scenario-workers", c1, c4, g1, g4, e1, e4)
}

// TestScenarioSnapshotDifferential: checkpoint at convergence, restore,
// run the scenario — bit-identical to running it straight through on
// the world that was checkpointed.
func TestScenarioSnapshotDifferential(t *testing.T) {
	const workers = 2
	net, eng := snapConverged(t, workers)
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, &snapshot.World{Net: net, Eng: eng}); err != nil {
		t.Fatal(err)
	}
	r1, c1, g1, e1 := scenarioEpilogue(t, net)

	img, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := snapshot.Restore(img, snapshot.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Eng != nil {
		defer restored.Eng.Close()
	}
	restored.Net.Sim.Registry().SetTraceCapacity(1 << 15)
	r2, c2, g2, e2 := scenarioEpilogue(t, restored.Net)

	if len(e1) == 0 {
		t.Fatal("no trace events recorded")
	}
	diffScenarioResults(t, fmt.Sprintf("snapshot/w%d", workers), r1, r2)
	diffSnapshots(t, "scenario-snapshot", c1, c2, g1, g2, e1, e2)
}
