// Paper-scale topology benchmark: generate the 44 036-AS synthetic
// Internet WITH links, build the full BGP network over it, and warm
// the valley-free routing trees — the three phases PR 4 made linear.
// `make bench-topo` runs the budget gate against the committed
// BENCH_topo.json; `make bench-topo-report` regenerates the file.
package discs_test

import (
	"os"
	"testing"
	"time"

	"discs/internal/benchgate"
	"discs/internal/bgp"
	"discs/internal/obs"
	"discs/internal/topology"
)

// topoBenchWarmTrees is the number of destination trees the warm phase
// precomputes (matches a generous DAS deployment, and stays well under
// the default cache capacity at 44k ASes).
const topoBenchWarmTrees = 32

// topoBenchReport is the schema of BENCH_topo.json.
type topoBenchReport struct {
	GeneratedBy string  `json:"generated_by"`
	ASes        int     `json:"ases"`
	Links       int     `json:"links"`
	Prefixes    int     `json:"prefixes"`
	WarmTrees   int     `json:"warm_trees"`
	GenerateS   float64 `json:"generate_s"`
	BuildS      float64 `json:"build_s"`
	WarmS       float64 `json:"warm_s"`
	TotalS      float64 `json:"total_s"`
	NextHopNs   float64 `json:"nexthop_ns"`
}

// measureTopoRun executes one full generate→build→warm pass at paper
// scale and measures each phase.
func measureTopoRun(t *testing.T) topoBenchReport {
	t.Helper()
	cfg := topology.DefaultGenConfig()
	cfg.SkipLinks = false

	start := time.Now()
	topo, err := topology.GenerateInternet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	genS := time.Since(start).Seconds()

	start = time.Now()
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	buildS := time.Since(start).Seconds()
	if got := net.Sim.NumNodes(); got != cfg.NumASes {
		t.Fatalf("network has %d nodes, want %d", got, cfg.NumASes)
	}

	reg := obs.NewRegistry()
	topo.PublishMetrics(reg)
	dsts := topo.BySizeDesc()[:topoBenchWarmTrees]
	start = time.Now()
	warmed := topo.WarmRoutes(dsts, 0)
	warmS := time.Since(start).Seconds()
	if warmed != topoBenchWarmTrees {
		t.Fatalf("warmed %d trees, want %d", warmed, topoBenchWarmTrees)
	}
	if g := reg.Snapshot().GetGauge(topology.MetricRouteTrees); g != topoBenchWarmTrees {
		t.Fatalf("route_trees gauge = %d, want %d", g, topoBenchWarmTrees)
	}

	// Warm NextHop is the forwarding hot path: it must stay O(1) and
	// allocation-free.
	asns := topo.ASNs()
	dst := dsts[0]
	allocs := testing.AllocsPerRun(1000, func() {
		topo.NextHop(asns[1], dst)
	})
	if allocs != 0 {
		t.Fatalf("warm NextHop allocates %.1f/op, want 0", allocs)
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topo.NextHop(asns[i%len(asns)], dst)
		}
	})

	return topoBenchReport{
		GeneratedBy: "make bench-topo-report",
		ASes:        topo.NumASes(),
		Links:       topo.NumLinks(),
		Prefixes:    topo.Pfx2AS().Len(),
		WarmTrees:   topoBenchWarmTrees,
		GenerateS:   genS,
		BuildS:      buildS,
		WarmS:       warmS,
		TotalS:      genS + buildS + warmS,
		NextHopNs:   float64(res.T.Nanoseconds()) / float64(res.N),
	}
}

// TestTopoBudget is the regression gate `make bench-topo` (part of
// `make check`) runs: the paper-scale generate+build+warm total must
// stay within 10% of the committed BENCH_topo.json. Gated behind an
// environment variable so plain `go test ./...` stays wall-clock
// independent across machines.
func TestTopoBudget(t *testing.T) {
	if os.Getenv("DISCS_TOPO_BENCH") == "" && os.Getenv("DISCS_TOPO_REPORT") == "" {
		t.Skip("set DISCS_TOPO_BENCH=1 (make bench-topo) to run the paper-scale topology gate")
	}
	var base topoBenchReport
	benchgate.Load(t, "BENCH_topo.json", "make bench-topo-report", &base)

	// Min of two runs: the gate measures the code, not a cold page
	// cache or a scheduler hiccup.
	run := measureTopoRun(t)
	if second := measureTopoRun(t); second.TotalS < run.TotalS {
		run = second
	}
	budget := benchgate.Budget(t, "paper-scale generate+build+warm (s)", run.TotalS, base.TotalS, 0.10)
	t.Logf("generate %.2fs + build %.2fs + warm(%d) %.2fs = %.2fs (budget %.2fs), warm NextHop %.0f ns",
		run.GenerateS, run.BuildS, run.WarmTrees, run.WarmS, run.TotalS, budget, run.NextHopNs)
}

// TestTopoReport regenerates BENCH_topo.json (make bench-topo-report).
func TestTopoReport(t *testing.T) {
	if os.Getenv("DISCS_TOPO_REPORT") == "" {
		t.Skip("set DISCS_TOPO_REPORT=1 (make bench-topo-report) to regenerate BENCH_topo.json")
	}
	best := measureTopoRun(t)
	if second := measureTopoRun(t); second.TotalS < best.TotalS {
		best = second
	}
	benchgate.Write(t, "BENCH_topo.json", best)
	t.Logf("generate %.2fs + build %.2fs + warm(%d) %.2fs = %.2fs, warm NextHop %.0f ns",
		best.GenerateS, best.BuildS, best.WarmTrees, best.WarmS, best.TotalS, best.NextHopNs)
}
