// Priority queueing (§I): the advantage DISCS has over MEF. When the
// victim's uplink is overwhelmed, CDP verification classifies inbound
// packets, so verified collaborator traffic rides a high-priority
// queue. An MEF-style victim cannot classify and loses almost all
// legitimate traffic with the flood.
//
//	go run ./examples/priority
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"discs/internal/core"
	"discs/internal/lpm"
	"discs/internal/packet"
	"discs/internal/qos"
	"discs/internal/topology"
)

func main() {
	log.SetFlags(0)

	// Data plane: peer AS1 stamps toward victim AS3, AS3 verifies.
	pfx := lpm.New[topology.ASN]()
	pfx.Insert(netip.MustParsePrefix("10.1.0.0/16"), 1)
	pfx.Insert(netip.MustParsePrefix("10.3.0.0/16"), 3)
	key := make([]byte, 16)
	t0 := time.Unix(0, 0).UTC()
	v := netip.MustParsePrefix("10.3.0.0/16")

	pt := core.NewTables(1, pfx)
	pt.In[core.TableOutDst].Install(v, core.OpCDPStamp, t0, time.Hour, 0)
	pt.Keys.SetStampKey(3, key)
	peer, err := core.NewBorderRouterWithOptions(core.RouterOptions{Tables: pt, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	vt := core.NewTables(3, pfx)
	vt.In[core.TableInDst].Install(v, core.OpCDPVerify, t0, time.Hour, 0)
	vt.Keys.SetVerifyKey(1, key)
	victim, err := core.NewBorderRouterWithOptions(core.RouterOptions{Tables: vt, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	now := t0.Add(time.Minute)

	// Workload: 300 pps of verified collaborator traffic + a 5000 pps
	// flood of unverifiable spoofed traffic, into a 1000 pps uplink.
	const legitPPS, attackPPS, capacity = 300, 5000, 1000
	var pkts []qos.Packet
	legit := map[int]bool{}
	id := 0
	add := func(src string, stamped bool, ppsRate int, isLegit bool) {
		gap := time.Second / time.Duration(ppsRate)
		for i := 0; i < ppsRate; i++ {
			p := &packet.IPv4{
				TTL: 64, Protocol: packet.ProtoUDP,
				Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr("10.3.0.1"),
				Payload: []byte{byte(id), byte(id >> 8), byte(id >> 16)},
			}
			if stamped {
				peer.ProcessOutbound(core.V4{P: p}, now)
			}
			verdict := victim.ProcessInbound(core.V4{P: p}, now)
			pkts = append(pkts, qos.Packet{
				Arrival: time.Duration(i) * gap,
				Class:   qos.ClassOf(verdict),
				ID:      id,
			})
			legit[id] = isLegit
			id++
		}
	}
	add("10.1.0.10", true, legitPPS, true)       // collaborator, stamped
	add("198.51.100.7", false, attackPPS, false) // spoofed flood

	q := qos.Queue{ServicePPS: capacity, BufferPerClass: 32}
	run := func(classified bool) float64 {
		in := make([]qos.Packet, len(pkts))
		copy(in, pkts)
		if !classified {
			for i := range in {
				in[i].Class = qos.Low
			}
		}
		out, err := q.Run(in)
		if err != nil {
			log.Fatal(err)
		}
		deliv, offered := 0, 0
		for _, o := range out {
			if legit[o.Packet.ID] {
				offered++
				if !o.Dropped {
					deliv++
				}
			}
		}
		return float64(deliv) / float64(offered)
	}

	fmt.Printf("uplink: %d pps capacity, %d pps legit + %d pps spoofed flood (%.1fx overload)\n\n",
		capacity, legitPPS, attackPPS, float64(legitPPS+attackPPS)/capacity)
	fmt.Printf("DISCS victim (CDP-verified -> high priority): legit goodput %.1f%%\n", 100*run(true))
	fmt.Printf("MEF-style victim (cannot classify inbound):   legit goodput %.1f%%\n", 100*run(false))
	fmt.Println("\nThis is §I's point: MEF's victim \"cannot determine whether an")
	fmt.Println("inbound packet is spoofed... so it cannot enforce prioritized")
	fmt.Println("queues in case the bandwidth is overwhelmed.\" DISCS can.")
}
