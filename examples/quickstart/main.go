// Quickstart: three ASes, two of which deploy DISCS, defending a
// d-DDoS with DP+CDP.
//
//	go run ./examples/quickstart
//
// It walks the full §IV lifecycle — discovery via DISCS-Ads carried in
// BGP, peering, key negotiation, on-demand invocation — then pushes
// spoofed and genuine packets through the data plane.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"discs/internal/attack"
	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/packet"
	"discs/internal/topology"
)

func main() {
	log.SetFlags(0)

	// 1. A tiny Internet: provider AS1 with customers AS2 (peer DAS),
	//    AS3 (victim DAS) and AS4 (legacy).
	topo := topology.New()
	for asn := topology.ASN(1); asn <= 4; asn++ {
		if _, err := topo.AddAS(asn); err != nil {
			log.Fatal(err)
		}
	}
	for _, c := range []topology.ASN{2, 3, 4} {
		if err := topo.Link(c, 1, topology.CustomerToProvider); err != nil {
			log.Fatal(err)
		}
	}
	prefixes := map[topology.ASN]string{
		1: "10.1.0.0/16", 2: "10.2.0.0/16", 3: "10.3.0.0/16", 4: "10.4.0.0/16",
	}
	for asn, p := range prefixes {
		if err := topo.AddPrefix(asn, netip.MustParsePrefix(p)); err != nil {
			log.Fatal(err)
		}
	}

	// 2. BGP: originate and converge.
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		log.Fatal(err)
	}

	// 3. Deploy DISCS on AS2 and AS3. Discovery, peering and key
	//    negotiation run inside the simulator.
	sys := core.NewSystem(net, core.DefaultConfig())
	for i, asn := range []topology.ASN{2, 3} {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AS3 peers: %v (status after BGP discovery + peering)\n",
		sys.Controllers[3].Peers())

	// 4. AS3 comes under d-DDoS and invokes DP+CDP for its prefix.
	victim := sys.Controllers[3]
	n, err := victim.Invoke(
		core.Invocation{Prefixes: victim.OwnPrefixes(), Function: core.DP, Duration: 24 * time.Hour},
		core.Invocation{Prefixes: victim.OwnPrefixes(), Function: core.CDP, Duration: 24 * time.Hour},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Settle(); err != nil {
		log.Fatal(err)
	}
	// Skip past the verification grace interval.
	sys.Net.Sim.After(core.DefaultGrace+time.Second, func() {})
	sys.Settle()
	fmt.Printf("AS3 invoked DP+CDP at %d peer(s)\n\n", n)

	send := func(label string, fromAS topology.ASN, src, dst string) {
		p := &packet.IPv4{
			TTL: 64, Protocol: packet.ProtoUDP,
			Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst),
			Payload: []byte("quickstart"),
		}
		res := sys.SendV4(fromAS, p)
		outcome := "DELIVERED"
		if !res.Delivered {
			outcome = fmt.Sprintf("DROPPED at AS%d", res.DroppedAt)
		}
		fmt.Printf("%-48s %s\n", label, outcome)
		for _, h := range res.Hops {
			fmt.Printf("    AS%d: %v\n", h.AS, h.Verdict)
		}
	}

	send("agent in AS2 spoofing 198.51.100.7 -> victim", 2, "198.51.100.7", "10.3.0.1")
	send("agent in AS4 spoofing AS2's space -> victim", 4, "10.2.0.99", "10.3.0.1")
	send("genuine AS2 host -> victim", 2, "10.2.0.10", "10.3.0.1")
	send("genuine AS4 host -> victim", 4, "10.4.0.10", "10.3.0.1")

	// 5. Measure the filtering rate on a sampled d-DDoS.
	sampler := attack.NewSampler(topo)
	var flows []attack.Flow
	for i := 0; i < 50; i++ {
		flows = append(flows, attack.Flow{Kind: attack.DDDoS, Agent: 2, Innocent: 4, Victim: 3})
		flows = append(flows, attack.Flow{Kind: attack.DDDoS, Agent: 4, Innocent: 2, Victim: 3})
	}
	_ = sampler
	res, err := attack.Run(sys, flows, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nd-DDoS mix: %d packets, %.0f%% filtered (peer egress + victim verification)\n",
		res.Sent, 100*res.DropRate())
}
