// Reflection (s-DDoS) defense: agents spoof the victim's source
// address toward reflectors so the amplified replies flood the victim
// (§I: a 60-byte DNS request can trigger a 4000-byte response). The
// victim invokes SP+CSP; SP drops reflection requests at peer egress,
// and CSP lets reflector-side peers verify that packets claiming the
// victim's sources really came from the victim.
//
//	go run ./examples/reflection
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"time"

	"discs/internal/attack"
	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/topology"
)

func main() {
	log.SetFlags(0)

	// AS1 is the provider; AS2 hosts a botnet (DAS); AS3 is the victim
	// (DAS); AS4 runs open DNS resolvers (DAS); AS5 is a legacy botnet
	// home.
	topo := topology.New()
	for asn := topology.ASN(1); asn <= 5; asn++ {
		if _, err := topo.AddAS(asn); err != nil {
			log.Fatal(err)
		}
	}
	for _, c := range []topology.ASN{2, 3, 4, 5} {
		if err := topo.Link(c, 1, topology.CustomerToProvider); err != nil {
			log.Fatal(err)
		}
	}
	for asn, p := range map[topology.ASN]string{
		1: "10.1.0.0/16", 2: "10.2.0.0/16", 3: "10.3.0.0/16", 4: "10.4.0.0/16", 5: "10.5.0.0/16",
	} {
		if err := topo.AddPrefix(asn, netip.MustParsePrefix(p)); err != nil {
			log.Fatal(err)
		}
	}
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		log.Fatal(err)
	}

	sys := core.NewSystem(net, core.DefaultConfig())
	for i, asn := range []topology.ASN{2, 3, 4} {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		log.Fatal(err)
	}

	victim := sys.Controllers[3]
	if _, err := victim.Invoke(
		core.Invocation{Prefixes: victim.OwnPrefixes(), Function: core.SP, Duration: 24 * time.Hour},
		core.Invocation{Prefixes: victim.OwnPrefixes(), Function: core.CSP, Duration: 24 * time.Hour},
	); err != nil {
		log.Fatal(err)
	}
	sys.Settle()
	sys.Net.Sim.After(core.DefaultGrace+time.Second, func() {})
	sys.Settle()
	fmt.Println("AS3 invoked SP+CSP against an in-progress reflection attack")

	// Reflection waves: requests spoofing the victim's sources.
	runWave := func(label string, agent topology.ASN, reflector topology.ASN) {
		flow := attack.Flow{Kind: attack.SDDoS, Agent: agent, Innocent: reflector, Victim: 3}
		res, err := attack.Run(sys, []attack.Flow{flow}, 200, int64(agent))
		if err != nil {
			log.Fatal(err)
		}
		// Delivered requests turn into amplified replies at the victim.
		fmt.Printf("%-44s %3d requests filtered, %5.1f amplified-Mpkt equivalent reaching victim\n",
			label, res.Dropped, res.AmplifiedDelivered/1000)
	}
	fmt.Println()
	runWave("botnet in peer AS2 -> reflectors in DAS AS4:", 2, 4)
	runWave("botnet in legacy AS5 -> reflectors in DAS AS4:", 5, 4)
	runWave("botnet in legacy AS5 -> reflectors in prov AS1:", 5, 1)

	// The victim's own DNS requests to the reflector AS keep working:
	// CSP stamps them, AS4 verifies and passes.
	genuine := attack.Flow{Kind: attack.SDDoS, Agent: 3, Innocent: 4, Victim: 3}
	pkts, err := genuine.Packets(topo, 50, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	ok := 0
	for _, p := range pkts {
		if sys.SendV4(3, p).Delivered {
			ok++
		}
	}
	fmt.Printf("\nvictim's own queries to AS4 resolvers: %d/50 delivered (CSP stamped+verified)\n", ok)
	fmt.Printf("AS4 verified marks: %d, dropped spoofed: %d\n",
		sys.Routers[4].Stats().InVerified, sys.Routers[4].Stats().InDropped)
}
