// Campaign: a time-driven attack scenario exercising the full §IV-E/F
// lifecycle — a DAS runs alarm-mode CDP as its detection net, a botnet
// launches a d-DDoS, the controller detects it from flow samples,
// auto-invokes enforcement, the attack outlives the first enforcement
// window, and the escalation loop re-invokes with a doubled duration.
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/flowexport"
	"discs/internal/packet"
	"discs/internal/topology"
)

func main() {
	log.SetFlags(0)

	topo := topology.New()
	for asn := topology.ASN(1); asn <= 4; asn++ {
		if _, err := topo.AddAS(asn); err != nil {
			log.Fatal(err)
		}
	}
	for _, c := range []topology.ASN{2, 3, 4} {
		if err := topo.Link(c, 1, topology.CustomerToProvider); err != nil {
			log.Fatal(err)
		}
	}
	for asn, p := range map[topology.ASN]string{
		1: "10.1.0.0/16", 2: "10.2.0.0/16", 3: "10.3.0.0/16", 4: "10.4.0.0/16",
	} {
		if err := topo.AddPrefix(asn, netip.MustParsePrefix(p)); err != nil {
			log.Fatal(err)
		}
	}
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.AlarmThreshold = 20
	cfg.Grace = time.Second
	sys := core.NewSystem(net, cfg)
	for i, asn := range []topology.ASN{2, 3} {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		log.Fatal(err)
	}
	victim := sys.Controllers[3]

	// Flow-export tap: the controller's analysis input (§IV-F).
	coll, err := flowexport.NewCollector(1)
	if err != nil {
		log.Fatal(err)
	}
	baseTap := sys.Routers[3].OnAlarm // controller threshold counter
	sys.Routers[3].OnAlarm = func(s core.AlarmSample) {
		flowexport.Tap(coll, packet.ProtoUDP, 64)(s)
		if baseTap != nil {
			baseTap(s)
		}
	}
	victim.AutoDefend = &core.AutoDefendPolicy{
		Functions: []core.Function{core.DP, core.CDP},
		Duration:  5 * time.Minute,
		Escalate:  true,
	}
	victim.OnAttackDetected = func(src topology.ASN) {
		recs := coll.Export(sys.Now(), true)
		top := flowexport.TopTalkers(recs, 1)
		fmt.Printf("[%7s] ATTACK DETECTED — flow analysis: top spoofed-source AS%d; auto-invoking DP+CDP\n",
			sys.Net.Sim.Now().Truncate(time.Second), top[0].AS)
	}

	// Detection net: alarm-mode CDP, long duration.
	if _, err := victim.Invoke(core.Invocation{
		Prefixes: victim.OwnPrefixes(), Function: core.CDP,
		Duration: 30 * 24 * time.Hour, Alarm: true,
	}); err != nil {
		log.Fatal(err)
	}
	sys.Settle()
	victim.SetAlarmMode(true)

	runFor := func(d time.Duration) { sys.Net.Sim.Run(sys.Net.Sim.Now() + d) }
	spoof := func(n int) (delivered int) {
		for i := 0; i < n; i++ {
			p := &packet.IPv4{
				TTL: 64, Protocol: packet.ProtoUDP,
				Src:     netip.MustParseAddr("10.2.0.66"), // spoofs peer AS2
				Dst:     netip.MustParseAddr("10.3.0.1"),
				Payload: []byte{byte(i), byte(i >> 8)},
			}
			if sys.SendV4(4, p).Delivered {
				delivered++
			}
		}
		return delivered
	}
	status := func(phase string, n int) {
		d := spoof(n)
		fmt.Printf("[%7s] %-34s %3d/%3d spoofed packets delivered\n",
			sys.Net.Sim.Now().Truncate(time.Second), phase, d, n)
	}

	runFor(2 * time.Second)
	status("peacetime probe (alarm mode):", 10)
	fmt.Println()
	fmt.Println("--- botnet opens fire ---")
	status("attack wave 1:", 30) // crosses the 20-sample threshold
	runFor(2 * time.Second)
	status("after detection + enforcement:", 30)

	fmt.Println()
	fmt.Println("--- attack persists past the 5-minute enforcement window ---")
	runFor(6 * time.Minute)
	// Re-arm the detection net (the enforcement window replaced it).
	victim.Invoke(core.Invocation{
		Prefixes: victim.OwnPrefixes(), Function: core.CDP,
		Duration: 30 * 24 * time.Hour, Alarm: true,
	})
	runFor(2 * time.Second)
	status("window expired (alarm re-armed):", 30)
	runFor(2 * time.Second)
	status("after escalated re-invocation:", 30)
	fmt.Printf("\nescalated enforcement duration: %v (doubled per §IV-E1)\n",
		10*time.Minute)

	// Genuine traffic was never harmed.
	ok := 0
	for i := 0; i < 20; i++ {
		p := &packet.IPv4{
			TTL: 64, Protocol: packet.ProtoUDP,
			Src: netip.MustParseAddr("10.4.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
			Payload: []byte("legit"),
		}
		if sys.SendV4(4, p).Delivered {
			ok++
		}
	}
	fmt.Printf("genuine traffic throughout: %d/20 delivered\n", ok)
}
