// Scenario: the declarative attack-campaign engine (internal/scenario)
// driving a generated internet through a phased pulse-wave campaign —
// onset train, defense invocation, an adaptive attacker rotating its
// spoofed sources, an adoption step with the §VI incentive values, and
// a legit-traffic sanity phase — then reporting time-to-mitigation and
// the ground-truth-labeled dataset the run exported.
//
// The same campaigns run from JSON files (this directory holds a
// curated library) via:
//
//	go run ./cmd/discs-sim -scenario examples/scenario/pulsewave.json
//	go run ./examples/scenario
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/flowexport"
	"discs/internal/scenario"
	"discs/internal/topology"
)

func main() {
	log.SetFlags(0)

	// A small generated internet: 30 ASes, Zipf-skewed address space,
	// DISCS on the 6 largest. The victim defaults to the last deployer.
	topo, err := topology.GenerateInternet(topology.GenConfig{
		NumASes: 30, NumPrefixes: 90, ZipfExponent: 1.0, Seed: 5, TierOneCount: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		log.Fatal(err)
	}
	sys := core.NewSystem(net, core.DefaultConfig())
	for i, asn := range topo.BySizeDesc()[:6] {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		log.Fatal(err)
	}

	// The campaign, phase by phase. The builder mirrors the JSON schema;
	// zero fields take the same defaults.
	spec, err := scenario.New("walkthrough", 42).
		Pulse("onset", 40, 6, 3, 500*time.Millisecond).
		Invoke("defend").
		Adaptive("rotate", scenario.StrategyRotate, 40, 6, 3, 500*time.Millisecond).
		Deploy("adopt", 4, "size").
		Pulse("sustain", 40, 6, 2, 500*time.Millisecond).
		Legit("sanity", 5).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	eng, err := scenario.NewEngine(scenario.Options{Spec: spec, Sys: sys})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario %q against victim AS%d:\n\n", res.Scenario, res.Victim)
	for _, ph := range res.Phases {
		fmt.Printf("%-8s %-9s", ph.Name, ph.Kind)
		switch ph.Kind {
		case scenario.PhaseInvoke:
			fmt.Printf(" invoked at %d peers\n", ph.InvokedPeers)
		case scenario.PhaseDeploy:
			fmt.Printf(" +%d DAS — ratio %.3f, IncDP %.3f, IncCDP %.3f, effectiveness %.3f\n",
				ph.NewDeployed, ph.DeployedRatio, ph.IncDP, ph.IncCDP, ph.Effectiveness)
		default:
			fmt.Printf(" %4d sent, %4d delivered, %4d dropped (%.0f%% filtered)",
				ph.Sent, ph.Delivered, ph.Dropped, 100*ph.DropRate)
			if ph.Rotations > 0 {
				fmt.Printf(", %d source rotations", ph.Rotations)
			}
			if ph.Kind == scenario.PhaseLegit {
				fmt.Printf(", %d false positives", ph.FalsePositives)
			}
			fmt.Println()
		}
	}

	if ttm := res.TTM; ttm != nil && ttm.Recovered {
		fmt.Printf("\ntime-to-mitigation: detect %v + recover %v = %v\n",
			ttm.DetectDelay, ttm.RecoveryDelay, ttm.Total)
	}

	// The dataset carries ground truth per (flow, phase): what the flow
	// was and what the defense did to it — export it for offline
	// analysis or detector training.
	byLabel := map[flowexport.Label]int{}
	for _, r := range res.Dataset {
		byLabel[r.Label]++
	}
	fmt.Printf("\nlabeled dataset: %d flow records (%d ddos, %d benign)\n",
		len(res.Dataset), byLabel[flowexport.LabelDDoS], byLabel[flowexport.LabelBenign])
	fmt.Println("\nfirst rows of the CSV export:")
	flowexport.WriteLabeledCSV(os.Stdout, res.Dataset[:3])
}
