// Alarm mode (§IV-F): a DAS without its own attack-detection module
// invokes CDP in alarm mode — identified spoofing packets are sampled
// and reported to the controller instead of dropped. When the sample
// rate crosses the threshold, the controller declares an attack, tells
// the peers to quit alarm mode, and enforcement begins.
//
//	go run ./examples/alarm
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/packet"
	"discs/internal/topology"
)

func main() {
	log.SetFlags(0)

	topo := topology.New()
	for asn := topology.ASN(1); asn <= 4; asn++ {
		if _, err := topo.AddAS(asn); err != nil {
			log.Fatal(err)
		}
	}
	for _, c := range []topology.ASN{2, 3, 4} {
		if err := topo.Link(c, 1, topology.CustomerToProvider); err != nil {
			log.Fatal(err)
		}
	}
	for asn, p := range map[topology.ASN]string{
		1: "10.1.0.0/16", 2: "10.2.0.0/16", 3: "10.3.0.0/16", 4: "10.4.0.0/16",
	} {
		if err := topo.AddPrefix(asn, netip.MustParsePrefix(p)); err != nil {
			log.Fatal(err)
		}
	}
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.AlarmThreshold = 25 // demo-sized detection threshold
	sys := core.NewSystem(net, cfg)
	for i, asn := range []topology.ASN{2, 3} {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		log.Fatal(err)
	}

	victim := sys.Controllers[3]
	victim.OnAttackDetected = func(src topology.ASN) {
		fmt.Printf(">>> controller detected an attack (samples point at AS%d); quitting alarm mode\n", src)
	}

	// Invoke CDP in alarm mode and arm the victim's own router too.
	if _, err := victim.Invoke(core.Invocation{
		Prefixes: victim.OwnPrefixes(), Function: core.CDP,
		Duration: 24 * time.Hour, Alarm: true,
	}); err != nil {
		log.Fatal(err)
	}
	sys.Settle()
	victim.SetAlarmMode(true)
	sys.Net.Sim.After(core.DefaultGrace+time.Second, func() {})
	sys.Settle()
	fmt.Println("CDP invoked in ALARM mode: spoofed packets are sampled, not dropped")

	spoofed := func() *packet.IPv4 {
		return &packet.IPv4{
			TTL: 64, Protocol: packet.ProtoUDP,
			Src:     netip.MustParseAddr("10.2.0.66"), // claims peer AS2's space
			Dst:     netip.MustParseAddr("10.3.0.1"),
			Payload: []byte("attack"),
		}
	}

	delivered, dropped := 0, 0
	for i := 0; i < 60; i++ {
		if sys.SendV4(4, spoofed()).Delivered {
			delivered++
		} else {
			dropped++
		}
	}
	fmt.Printf("\nattack wave: %d delivered (alarm phase), %d dropped (after escalation)\n",
		delivered, dropped)
	fmt.Printf("victim router: %d sampled in alarm mode, %d dropped after enforcement\n",
		sys.Routers[3].Stats().InAlarmed, sys.Routers[3].Stats().InDropped)

	// Genuine traffic was never at risk in either phase.
	genuine := &packet.IPv4{
		TTL: 64, Protocol: packet.ProtoUDP,
		Src: netip.MustParseAddr("10.4.0.10"), Dst: netip.MustParseAddr("10.3.0.1"),
		Payload: []byte("hello"),
	}
	if sys.SendV4(4, genuine).Delivered {
		fmt.Println("genuine legacy traffic: DELIVERED (alarm mode is FP-safe)")
	}
}
