// Incremental deployment (§VI-A): DISCS's incentive grows
// monotonically with the deployment set. This example grows a DAS
// population on a synthetic Internet largest-first (the §VI-A3 optimal
// strategy), and after each step measures — analytically and by
// flow-level Monte Carlo — the incentive an undecided LAS would gain
// by joining.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"

	"discs/internal/attack"
	"discs/internal/eval"
	"discs/internal/topology"
)

func main() {
	log.SetFlags(0)

	topo, err := topology.GenerateInternet(topology.GenConfig{
		NumASes: 2000, NumPrefixes: 6000,
		ZipfExponent: 0.95, HeadRanks: 30, TailExponent: 2.5,
		Seed: 3, SkipLinks: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	r := eval.FromTopology(topo)
	order := r.OptimalOrder()
	prospect := order[len(order)-1] // the tiny LAS weighing whether to join

	fmt.Println("deployers  space-share  inc(DP+CDP) closed-form  Monte-Carlo   effectiveness")
	acc := eval.NewAccumulator(r)
	var deployed []topology.ASN
	next := 0
	for _, step := range []int{1, 2, 5, 10, 20, 50, 100, 200} {
		for next < step {
			if err := acc.Deploy(order[next]); err != nil {
				log.Fatal(err)
			}
			deployed = append(deployed, order[next])
			next++
		}
		closed := acc.IncBothFor(prospect)
		mc := eval.MonteCarloIncentive(topo, deployed, prospect, attack.DDDoS, 20000, int64(step))
		fmt.Printf("%9d  %11.3f  %22.3f  %11.3f  %13.3f\n",
			step, acc.DeployedRatio(), closed, mc, acc.Effectiveness())
	}

	fmt.Println("\nThe incentive column never decreases (the §VI-A monotonicity")
	fmt.Println("theorem), and the Monte-Carlo flow simulation tracks the closed")
	fmt.Println("form — joining DISCS pays off more the larger the system gets.")
}
