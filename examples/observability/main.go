// Observability: one registry spanning the whole system, sim-clock
// interval snapshots, and the control/data-plane event trace.
//
//	go run ./examples/observability
//
// It builds the quickstart Internet with packet sampling enabled,
// records an interval time series while the control plane peers and an
// attack is defended, then prints fleet totals, the series and the
// event log — and writes the same data as a JSON export a rewritten
// `discs-report -metrics` can render.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"os"
	"path/filepath"
	"time"

	"discs/internal/attack"
	"discs/internal/bgp"
	"discs/internal/cli"
	"discs/internal/core"
	"discs/internal/obs"
	"discs/internal/packet"
	"discs/internal/topology"
)

func main() {
	cli.Init("observability")

	// 1. The quickstart Internet: provider AS1, DASes AS2 and AS3,
	//    legacy AS4.
	topo := topology.New()
	for asn := topology.ASN(1); asn <= 4; asn++ {
		if _, err := topo.AddAS(asn); err != nil {
			log.Fatal(err)
		}
	}
	for _, c := range []topology.ASN{2, 3, 4} {
		if err := topo.Link(c, 1, topology.CustomerToProvider); err != nil {
			log.Fatal(err)
		}
	}
	for asn, p := range map[topology.ASN]string{
		1: "10.1.0.0/16", 2: "10.2.0.0/16", 3: "10.3.0.0/16", 4: "10.4.0.0/16",
	} {
		if err := topo.AddPrefix(asn, netip.MustParsePrefix(p)); err != nil {
			log.Fatal(err)
		}
	}
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		log.Fatal(err)
	}

	// 2. One system, one registry. TraceSampleEvery turns on data-plane
	//    packet sampling in every router Deploy builds; the controllers
	//    trace their lifecycle (peering, key exchange, campaigns)
	//    unconditionally.
	cfg := core.DefaultConfig()
	cfg.TraceSampleEvery = 4
	sys := core.NewSystem(net, cfg)

	// 3. An interval recorder on the simulated clock: every 500ms of
	//    simulated time, snapshot the whole registry.
	rec := obs.NewRecorder()
	net.Sim.EveryBackground(500*time.Millisecond, func() {
		rec.Record(sys.Registry().Snapshot())
	})

	// 4. Deploy, defend, attack — paced so the series has shape.
	for i, asn := range []topology.ASN{2, 3} {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		log.Fatal(err)
	}
	victim := sys.Controllers[3]
	if _, err := victim.Invoke(
		core.Invocation{Prefixes: victim.OwnPrefixes(), Function: core.DP, Duration: 24 * time.Hour},
		core.Invocation{Prefixes: victim.OwnPrefixes(), Function: core.CDP, Duration: 24 * time.Hour},
	); err != nil {
		log.Fatal(err)
	}
	sys.Settle()
	sys.Net.Sim.After(core.DefaultGrace+time.Second, func() {})
	sys.Settle()

	var flows []attack.Flow
	for i := 0; i < 40; i++ {
		flows = append(flows, attack.Flow{Kind: attack.DDDoS, Agent: 2, Innocent: 4, Victim: 3})
		flows = append(flows, attack.Flow{Kind: attack.DDDoS, Agent: 4, Innocent: 2, Victim: 3})
	}
	res, err := attack.RunPaced(sys, flows, 4, 1, 6, 500*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack: %d packets, %.0f%% filtered\n", res.Sent, 100*res.DropRate())

	// Genuine AS2→AS3 traffic rides the same campaign: stamped at the
	// peer's egress, verified at the victim's border.
	genuine := 0
	for i := 0; i < 20; i++ {
		p := &packet.IPv4{
			TTL: 64, Protocol: packet.ProtoUDP,
			Src:     netip.AddrFrom4([4]byte{10, 2, 0, byte(i + 1)}),
			Dst:     netip.MustParseAddr("10.3.0.1"),
			Payload: []byte("observability"),
		}
		if sys.SendV4(2, p).Delivered {
			genuine++
		}
	}
	fmt.Printf("genuine: %d/20 delivered\n\n", genuine)

	// 5. Every subsystem's Stats() is a view over the same registry.
	snap := sys.Stats()
	fmt.Printf("one registry, %d counters; stamped at t=%.3fs simulated\n",
		len(snap.Counters), cli.Seconds(snap.AtNanos))
	fmt.Printf("  netsim:       %d frames delivered, %d lost\n",
		snap.Get("netsim.delivered"), snap.Get("netsim.faults.lost"))
	fmt.Printf("  AS3 control:  %d msgs sent (same number via controller view: %d)\n",
		snap.Get("as3."+core.MetricCtrlMsgsSent),
		victim.Stats().Get(core.MetricCtrlMsgsSent))
	fmt.Printf("  fleet data plane: %d stamped, %d verified, %d dropped inbound\n\n",
		snap.Sum(core.MetricRouterOutStamped), snap.Sum(core.MetricRouterInVerified),
		snap.Sum(core.MetricRouterInDropped))

	// 6. The interval series, fleet-aggregated. The full series goes
	//    into the export; here the quiet intervals are elided.
	cols := []string{"router.out_stamped", "router.in_dropped", "ctrl.msgs_sent"}
	active := rec.Points()[:0:0]
	var prev obs.Snapshot
	for _, p := range rec.Points() {
		d := p.Delta(prev)
		prev = p
		for _, c := range cols {
			if d.Sum(c) != 0 {
				active = append(active, p)
				break
			}
		}
	}
	fmt.Printf("interval series (per-500ms deltas; %d of %d intervals active):\n",
		len(active), len(rec.Points()))
	if err := cli.WriteSeriesTSV(os.Stdout, active, cols); err != nil {
		log.Fatal(err)
	}

	// 7. The event trace: control-plane lifecycle plus sampled packet
	//    verdicts, all in simulated time.
	fmt.Println("\nevent trace (by kind):")
	for _, kc := range cli.EventCounts(sys.Registry().Tracer().Events()) {
		fmt.Printf("  %-18s %d\n", kc.Kind, kc.N)
	}

	// 8. The same data as the on-disk artifact discs-report renders.
	path := filepath.Join(os.TempDir(), "discs-observability.json")
	ex := obs.NewExport("examples/observability", sys.Registry(), rec, int64(500*time.Millisecond))
	if err := ex.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d points, %d events) — render with:\n  go run ./cmd/discs-report -metrics %s\n",
		path, len(ex.Points), len(ex.Events), path)
}
