// Command discs-sim runs an end-to-end DISCS scenario on a synthetic
// Internet: BGP convergence, DAS discovery via DISCS-Ads, peering, key
// negotiation, a d-DDoS plus reflection attack, on-demand invocation
// of the four defense functions, and a report of where the spoofed
// traffic died.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"time"

	"discs/internal/attack"
	"discs/internal/bgp"
	"discs/internal/core"
	"discs/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("discs-sim: ")
	var (
		nASes   = flag.Int("ases", 200, "number of ASes")
		nDAS    = flag.Int("das", 10, "number of DISCS deployers (largest-first)")
		flows   = flag.Int("flows", 200, "number of attack flows")
		perFlow = flag.Int("per-flow", 10, "packets per flow")
		seed    = flag.Int64("seed", 1, "simulation seed")
		invoke  = flag.String("invoke", "", `invocation triples to use instead of all four functions, e.g. "all:DP:24h,all:CDP:24h" ("all" expands to the victim's prefixes)`)
	)
	flag.Parse()

	topo, err := topology.GenerateInternet(topology.GenConfig{
		NumASes: *nASes, NumPrefixes: *nASes * 3, ZipfExponent: 1.0,
		TierOneCount: 5, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	net.OriginateAll()
	if err := net.Converge(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("internet: %d ASes, %d prefixes, BGP converged\n", topo.NumASes(), topo.Pfx2AS().Len())

	sys := core.NewSystem(net, core.DefaultConfig())
	deployers := topo.BySizeDesc()[:*nDAS]
	for i, asn := range deployers {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		log.Fatal(err)
	}
	victim := deployers[len(deployers)-1]
	vc := sys.Controllers[victim]
	fmt.Printf("deployed DISCS on %d largest ASes; victim AS%d has %d peers\n",
		*nDAS, victim, len(vc.Peers()))

	// Attack before invocation: everything gets through.
	sampler := attack.NewSampler(topo)
	rng := rand.New(rand.NewSource(*seed))
	mkFlows := func(kind attack.Kind) []attack.Flow {
		out := make([]attack.Flow, *flows)
		for i := range out {
			out[i] = sampler.DrawFlowForVictim(kind, victim, rng)
		}
		return out
	}
	dFlows, sFlows := mkFlows(attack.DDDoS), mkFlows(attack.SDDoS)

	before, err := attack.Run(sys, dFlows, *perFlow, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nd-DDoS before invocation: %d sent, %d delivered (%.1f%% filtered)\n",
		before.Sent, before.Delivered, 100*before.DropRate())

	// The victim detects the attack and invokes. By default it invokes
	// everything (§IV-E2: unknown attack type → all four functions);
	// -invoke overrides with explicit (v, f, duration) triples, where
	// the prefix "all" expands to the victim's own prefixes.
	var invs []core.Invocation
	if *invoke == "" {
		for _, f := range []core.Function{core.DP, core.CDP, core.SP, core.CSP} {
			invs = append(invs, core.Invocation{
				Prefixes: vc.OwnPrefixes(), Function: f, Duration: 24 * time.Hour,
			})
		}
	} else {
		var err error
		invs, err = core.ParseInvocations(strings.ReplaceAll(*invoke, "all:", "0.0.0.0/0:"))
		if err != nil {
			log.Fatal(err)
		}
		for i := range invs {
			if len(invs[i].Prefixes) == 1 && invs[i].Prefixes[0].Bits() == 0 {
				invs[i].Prefixes = vc.OwnPrefixes()
			}
		}
	}
	n, err := vc.Invoke(invs...)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Settle(); err != nil {
		log.Fatal(err)
	}
	sys.Net.Sim.After(core.DefaultGrace+time.Second, func() {})
	sys.Settle()
	names := make([]string, len(invs))
	for i, inv := range invs {
		names[i] = inv.Function.String()
	}
	fmt.Printf("victim invoked %s at %d peers\n", strings.Join(names, "+"), n)

	report := func(name string, res attack.Result) {
		fmt.Printf("\n%s after invocation: %d sent, %d delivered (%.1f%% filtered)\n",
			name, res.Sent, res.Delivered, 100*res.DropRate())
		var where []topology.ASN
		for asn := range res.DroppedAt {
			where = append(where, asn)
		}
		sort.Slice(where, func(i, j int) bool {
			// Tie-break equal drop counts by ASN: map iteration order must
			// not leak into the report (the output is diffed across runs).
			di, dj := res.DroppedAt[where[i]], res.DroppedAt[where[j]]
			if di != dj {
				return di > dj
			}
			return where[i] < where[j]
		})
		for _, asn := range where {
			role := "peer egress (far from victim)"
			if asn == victim {
				role = "victim border (verification)"
			}
			fmt.Printf("  dropped at AS%-6d %6d  %s\n", asn, res.DroppedAt[asn], role)
		}
	}

	after, err := attack.Run(sys, dFlows, *perFlow, *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	report("d-DDoS", after)

	afterS, err := attack.Run(sys, sFlows, *perFlow, *seed+2)
	if err != nil {
		log.Fatal(err)
	}
	report("s-DDoS", afterS)

	// Legitimate traffic sanity: genuine flows from every DAS peer.
	ok, total := 0, 0
	for _, asn := range deployers[:len(deployers)-1] {
		pkts, err := (attack.Flow{Kind: attack.DDDoS, Agent: asn, Innocent: asn, Victim: victim}).
			Packets(topo, 10, rng)
		if err != nil {
			continue
		}
		for _, p := range pkts {
			total++
			if sys.SendV4(asn, p).Delivered {
				ok++
			}
		}
	}
	fmt.Printf("\nlegitimate traffic from peers: %d/%d delivered (false positives: %d)\n",
		ok, total, total-ok)

	// Fleet-wide data-plane resource accounting (§VI-C2): how much work
	// the scenario cost across every deployed border router.
	dp := sys.DataPlaneStats()
	fmt.Printf("\ndata plane totals across %d routers:\n", len(sys.Routers))
	fmt.Printf("  outbound: %d processed, %d stamped, %d dropped\n",
		dp.OutProcessed, dp.OutStamped, dp.OutDropped)
	fmt.Printf("  inbound:  %d processed, %d verified, %d verify-failed, %d dropped, %d erased-only\n",
		dp.InProcessed, dp.InVerified, dp.InVerifyFail, dp.InDropped, dp.InErasedOnly)
	fmt.Printf("  crypto:   %d CMACs computed, %d ICMP errors scrubbed\n",
		dp.MACsComputed, dp.ICMPScrubbed)
}
