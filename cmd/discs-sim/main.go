// Command discs-sim runs an end-to-end DISCS scenario on a synthetic
// Internet: BGP convergence, DAS discovery via DISCS-Ads, peering, key
// negotiation, a d-DDoS plus reflection attack, on-demand invocation
// of the four defense functions, and a report of where the spoofed
// traffic died.
//
// With -metrics it also writes the unified observability export
// (internal/obs): the final registry snapshot, an interval time series
// recorded on the simulated clock, and the control/data-plane event
// trace. discs-report -metrics renders that file.
//
// Checkpoint/restore: -snapshot writes a crash-consistent image of
// the deployed, settled world (internal/snapshot) and continues;
// -restore boots from such an image — skipping generation,
// convergence and deployment — and runs the attack phase after
// journal-replay recovery. -sweep N forks N scenario cells from one
// warm image, varying the attack seed per cell.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"discs/internal/attack"
	"discs/internal/bgp"
	"discs/internal/cli"
	"discs/internal/core"
	"discs/internal/flowexport"
	"discs/internal/obs"
	"discs/internal/parsim"
	"discs/internal/scenario"
	"discs/internal/snapshot"
	"discs/internal/topology"
)

// runOpts bundles the attack/invocation-phase knobs shared by a
// straight-through run and restored cells.
type runOpts struct {
	flows, perFlow, waves int
	interval              time.Duration
	invoke                string
	seed                  int64
	// scenarioPath switches the attack phase to a declarative campaign
	// (internal/scenario); dataset optionally exports its labeled flow
	// records. seedOffset shifts the scenario RNG per sweep cell.
	scenarioPath, dataset string
	seedOffset            int64
}

func main() {
	cli.Init("discs-sim")
	topoFlags := cli.RegisterTopoFlags(topology.GenConfig{
		NumASes: 200, NumPrefixes: 600, ZipfExponent: 1.0, Seed: 1,
	})
	var (
		paper   = flag.Bool("paper", false, "run at paper scale: topology.DefaultGenConfig (44 036 ASes, ~442k prefixes) with one originated prefix per DAS; explicit -ases/-prefixes/-zipf/-seed still override")
		nDAS    = flag.Int("das", 10, "number of DISCS deployers (largest-first)")
		flows   = flag.Int("flows", 200, "number of attack flows")
		perFlow = flag.Int("per-flow", 10, "packets per flow")
		invoke  = flag.String("invoke", "", `invocation triples to use instead of all four functions, e.g. "all:DP:24h,all:CDP:24h" ("all" expands to the victim's prefixes)`)

		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker goroutines for the parallel engine (0 = legacy serial scheduler); results are bit-identical across worker counts")

		metrics  = flag.String("metrics", "", "write the observability export (JSON) to this path")
		interval = flag.Duration("interval", time.Second, "simulated-time spacing of interval snapshots and attack waves")
		waves    = flag.Int("waves", 8, "attack waves per run (clock advances by -interval between waves)")
		sample   = flag.Int("trace-sample", 64, "with -metrics, trace every Nth data-plane packet decision")

		scenarioPath = flag.String("scenario", "", "run a declarative scenario spec (JSON, see examples/scenario) instead of the built-in attack phase")
		dataset      = flag.String("dataset", "", "with -scenario: write the ground-truth-labeled flow dataset to this path (.csv, or .dfx2 for the binary export)")

		snapPath    = flag.String("snapshot", "", "after deployment settles, write a crash-consistent world snapshot to this path and continue")
		restorePath = flag.String("restore", "", "boot from a world snapshot instead of generating/converging/deploying (topology, DAS set and seed come from the image)")
		sweep       = flag.Int("sweep", 0, "with -restore: fork N scenario cells from the image, attack seed varying per cell")
	)
	flag.Parse()
	seed := topoFlags.Seed

	if *restorePath != "" {
		runRestored(*restorePath, *workers, *sweep, runOpts{
			flows: *flows, perFlow: *perFlow, waves: *waves,
			interval: *interval, invoke: *invoke, seed: seed,
			scenarioPath: *scenarioPath, dataset: *dataset,
		})
		return
	}
	if *sweep > 0 {
		log.Fatal("-sweep requires -restore")
	}

	// Paper mode swaps in the full evaluation scale of §VI: the
	// DefaultGenConfig synthetic Internet (2012 CAIDA snapshot scale)
	// with links, linear-time network build, warmed routing trees, and
	// one originated prefix per DAS — BGP's only required role in
	// DISCS is disseminating the Ads, and a full 442k-prefix table
	// would push convergence to ~200M events for no additional signal.
	var genCfg topology.GenConfig
	if *paper {
		genCfg = topoFlags.ConfigSet(topology.DefaultGenConfig())
		seed = genCfg.Seed
	} else {
		genCfg = topoFlags.Config(topology.GenConfig{TierOneCount: 5})
	}
	start := time.Now()
	topo, err := topology.GenerateInternet(genCfg)
	if err != nil {
		log.Fatal(err)
	}
	genDur := time.Since(start)
	start = time.Now()
	net, err := bgp.BuildNetwork(topo, time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	buildDur := time.Since(start)

	// Install the parallel engine before any event is scheduled: shard
	// the border nodes by customer-cone locality, then swap the
	// simulator's scheduler for the conservative lookahead engine. A
	// parallel run is bit-identical to -workers 1 (see DESIGN.md §11).
	var eng *parsim.Engine
	if *workers > 0 {
		net.AssignShards(parsim.DefaultShards)
		eng, err = parsim.New(net.Sim, parsim.Options{Shards: parsim.DefaultShards, Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		mode := "parallel"
		if eng.Merged() {
			mode = "merged (zero-delay cross-shard link)"
		}
		fmt.Printf("parsim engine: %d shards, %d workers, lookahead %v, mode %s\n",
			eng.Shards(), eng.Workers(), eng.Lookahead(), mode)
	}

	deployers := topo.BySizeDesc()[:*nDAS]
	start = time.Now()
	if *paper {
		net.OriginateFirst(deployers...)
	} else {
		net.OriginateAll()
	}
	if err := net.Converge(); err != nil {
		log.Fatal(err)
	}
	convDur := time.Since(start)
	fmt.Printf("internet: %d ASes, %d links, %d prefixes, BGP converged\n",
		topo.NumASes(), topo.NumLinks(), topo.Pfx2AS().Len())
	if *paper {
		fmt.Printf("paper-scale timings: generate %.2fs, build %.2fs, originate+converge %.2fs\n",
			genDur.Seconds(), buildDur.Seconds(), convDur.Seconds())
	}

	cfg := core.DefaultConfig()
	if *metrics != "" {
		cfg.TraceSampleEvery = *sample
	}
	sys := core.NewSystem(net, cfg)

	// The interval recorder ticks on the simulated clock, so points
	// appear whenever the scenario advances time (settling, grace
	// windows, attack waves) — armed before deployment so the control
	// plane's ramp-up is part of the series.
	var rec *obs.Recorder
	if *metrics != "" {
		rec = obs.NewRecorder()
		net.Sim.EveryBackground(*interval, func() {
			rec.Record(sys.Registry().Snapshot())
		})
	}

	for i, asn := range deployers {
		if _, err := sys.Deploy(asn, int64(i+1)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Settle(); err != nil {
		log.Fatal(err)
	}
	victim := deployers[len(deployers)-1]
	if *paper {
		// Precompute routing trees for every destination the scenario
		// forwards toward (the victim and the DAS peers), so the
		// attack waves run on O(1) warm NextHop lookups.
		start = time.Now()
		warmed := topo.WarmRoutes(deployers, 0)
		fmt.Printf("paper-scale timings: warmed %d routing trees in %.2fs\n",
			warmed, time.Since(start).Seconds())
	}
	vc := sys.Controllers[victim]
	fmt.Printf("deployed DISCS on %d largest ASes; victim AS%d has %d peers\n",
		*nDAS, victim, len(vc.Peers()))

	// The deployed, settled, warmed world is the expensive part of a
	// run; -snapshot persists it so later runs (and -sweep scenario
	// fans) start here instead of at generation.
	if *snapPath != "" {
		start = time.Now()
		if err := snapshot.WriteFile(*snapPath, &snapshot.World{Net: net, Eng: eng, Sys: sys}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote world snapshot: %s (%.2fs)\n", *snapPath, time.Since(start).Seconds())
	}

	runAttack(sys, eng, deployers, runOpts{
		flows: *flows, perFlow: *perFlow, waves: *waves,
		interval: *interval, invoke: *invoke, seed: seed,
		scenarioPath: *scenarioPath, dataset: *dataset,
	})

	if *metrics != "" {
		ex := obs.NewExport("discs-sim", sys.Registry(), rec, int64(*interval))
		if err := ex.WriteFile(*metrics); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote observability export: %s (%d interval points, %d events, %d dropped)\n",
			*metrics, len(ex.Points), len(ex.Events), ex.EventsDropped)
	}
}

// runAttack executes the attack/invocation phase — the part of the
// scenario after the world is deployed and settled, which is exactly
// where a restored snapshot resumes. With -scenario it hands the whole
// phase to the declarative engine instead.
func runAttack(sys *core.System, eng *parsim.Engine, deployers []topology.ASN, sc runOpts) {
	if sc.scenarioPath != "" {
		runScenario(sys, sc)
		return
	}
	topo := sys.Net.Topo
	victim := deployers[len(deployers)-1]
	vc := sys.Controllers[victim]

	// Attack before invocation: everything gets through.
	sampler := attack.NewSampler(topo)
	rng := rand.New(rand.NewSource(sc.seed))
	mkFlows := func(kind attack.Kind) []attack.Flow {
		out := make([]attack.Flow, sc.flows)
		for i := range out {
			out[i] = sampler.DrawFlowForVictim(kind, victim, rng)
		}
		return out
	}
	dFlows, sFlows := mkFlows(attack.DDDoS), mkFlows(attack.SDDoS)

	before, err := attack.RunPaced(sys, dFlows, sc.perFlow, sc.seed, sc.waves, sc.interval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nd-DDoS before invocation: %d sent, %d delivered (%.1f%% filtered)\n",
		before.Sent, before.Delivered, 100*before.DropRate())

	// The victim detects the attack and invokes. By default it invokes
	// everything (§IV-E2: unknown attack type → all four functions);
	// -invoke overrides with explicit (v, f, duration) triples, where
	// the prefix "all" expands to the victim's own prefixes.
	var invs []core.Invocation
	if sc.invoke == "" {
		for _, f := range []core.Function{core.DP, core.CDP, core.SP, core.CSP} {
			invs = append(invs, core.Invocation{
				Prefixes: vc.OwnPrefixes(), Function: f, Duration: 24 * time.Hour,
			})
		}
	} else {
		var err error
		invs, err = core.ParseInvocations(strings.ReplaceAll(sc.invoke, "all:", "0.0.0.0/0:"))
		if err != nil {
			log.Fatal(err)
		}
		for i := range invs {
			if len(invs[i].Prefixes) == 1 && invs[i].Prefixes[0].Bits() == 0 {
				invs[i].Prefixes = vc.OwnPrefixes()
			}
		}
	}
	n, err := vc.Invoke(invs...)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Settle(); err != nil {
		log.Fatal(err)
	}
	sys.Net.Sim.After(core.DefaultGrace+time.Second, func() {})
	sys.Settle()
	names := make([]string, len(invs))
	for i, inv := range invs {
		names[i] = inv.Function.String()
	}
	fmt.Printf("victim invoked %s at %d peers\n", strings.Join(names, "+"), n)

	report := func(name string, res attack.Result) {
		fmt.Printf("\n%s after invocation: %d sent, %d delivered (%.1f%% filtered)\n",
			name, res.Sent, res.Delivered, 100*res.DropRate())
		var where []topology.ASN
		for asn := range res.DroppedAt {
			where = append(where, asn)
		}
		sort.Slice(where, func(i, j int) bool {
			// Tie-break equal drop counts by ASN: map iteration order must
			// not leak into the report (the output is diffed across runs).
			di, dj := res.DroppedAt[where[i]], res.DroppedAt[where[j]]
			if di != dj {
				return di > dj
			}
			return where[i] < where[j]
		})
		for _, asn := range where {
			role := "peer egress (far from victim)"
			if asn == victim {
				role = "victim border (verification)"
			}
			fmt.Printf("  dropped at AS%-6d %6d  %s\n", asn, res.DroppedAt[asn], role)
		}
	}

	after, err := attack.RunPaced(sys, dFlows, sc.perFlow, sc.seed+1, sc.waves, sc.interval)
	if err != nil {
		log.Fatal(err)
	}
	report("d-DDoS", after)

	afterS, err := attack.RunPaced(sys, sFlows, sc.perFlow, sc.seed+2, sc.waves, sc.interval)
	if err != nil {
		log.Fatal(err)
	}
	report("s-DDoS", afterS)

	// Legitimate traffic sanity: genuine flows from every DAS peer.
	ok, total := 0, 0
	for _, asn := range deployers[:len(deployers)-1] {
		pkts, err := (attack.Flow{Kind: attack.DDDoS, Agent: asn, Innocent: asn, Victim: victim}).
			Packets(topo, 10, rng)
		if err != nil {
			continue
		}
		for _, p := range pkts {
			total++
			if sys.SendV4(asn, p).Delivered {
				ok++
			}
		}
	}
	fmt.Printf("\nlegitimate traffic from peers: %d/%d delivered (false positives: %d)\n",
		ok, total, total-ok)

	// Fleet-wide resource accounting (§VI-C2): one registry spans the
	// whole system, so totals are suffix sums over the snapshot.
	snap := sys.Stats()
	fmt.Printf("\ndata plane totals across %d routers:\n", len(sys.Routers))
	fmt.Printf("  outbound: %d processed, %d stamped, %d dropped\n",
		snap.Sum(core.MetricRouterOutProcessed), snap.Sum(core.MetricRouterOutStamped),
		snap.Sum(core.MetricRouterOutDropped))
	fmt.Printf("  inbound:  %d processed, %d verified, %d verify-failed, %d dropped, %d erased-only\n",
		snap.Sum(core.MetricRouterInProcessed), snap.Sum(core.MetricRouterInVerified),
		snap.Sum(core.MetricRouterInVerifyFail), snap.Sum(core.MetricRouterInDropped),
		snap.Sum(core.MetricRouterInErasedOnly))
	fmt.Printf("  crypto:   %d CMACs computed, %d ICMP errors scrubbed\n",
		snap.Sum(core.MetricRouterMACsComputed), snap.Sum(core.MetricRouterICMPScrubbed))
	fmt.Printf("control plane totals across %d controllers:\n", len(sys.Controllers))
	fmt.Printf("  %d msgs sent, %d received, %d retries; %d B sealed, %d B opened\n",
		snap.Sum(core.MetricCtrlMsgsSent), snap.Sum(core.MetricCtrlMsgsRecv),
		snap.Sum(core.MetricCtrlRetries), snap.Sum(core.MetricCtrlBytesSealed),
		snap.Sum(core.MetricCtrlBytesOpened))

	if eng != nil {
		fmt.Printf("\nparsim: %d epochs, %.3fs total worker stall\n",
			snap.Get(parsim.MetricEpochs),
			time.Duration(snap.Get(parsim.MetricStallNS)).Seconds())
		for w := 0; w < eng.Workers(); w++ {
			fmt.Printf("  worker %d: %d events\n", w, snap.Get(parsim.MetricWorkerEvents(w)))
		}
	}
}

// runScenario executes a declarative campaign (internal/scenario) on
// the deployed world: parse the spec, drive every phase, report
// per-phase outcomes and time-to-mitigation, and optionally export the
// ground-truth-labeled flow dataset.
func runScenario(sys *core.System, sc runOpts) {
	raw, err := os.ReadFile(sc.scenarioPath)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := scenario.Parse(raw)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := scenario.NewEngine(scenario.Options{Spec: spec, Sys: sys, SeedOffset: sc.seedOffset})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nscenario %q (seed %d+%d) against victim AS%d:\n",
		res.Scenario, res.Seed, sc.seedOffset, res.Victim)
	fmt.Printf("  %-3s %-18s %-8s %9s %9s %9s %7s\n",
		"#", "phase", "kind", "sent", "delivered", "dropped", "drop%")
	for _, ph := range res.Phases {
		fmt.Printf("  %-3d %-18s %-8s %9d %9d %9d %6.1f%%",
			ph.Index, ph.Name, ph.Kind, ph.Sent, ph.Delivered, ph.Dropped, 100*ph.DropRate)
		switch {
		case ph.Kind == scenario.PhaseInvoke:
			fmt.Printf("  invoked at %d peers", ph.InvokedPeers)
		case ph.Kind == scenario.PhaseDeploy:
			fmt.Printf("  +%d DAS (ratio %.3f, IncDP %.3f, IncCDP %.3f, eff %.3f)",
				ph.NewDeployed, ph.DeployedRatio, ph.IncDP, ph.IncCDP, ph.Effectiveness)
		case ph.Kind == scenario.PhaseAdaptive:
			fmt.Printf("  rotations %d, probes %d, agents %d live / %d idle",
				ph.Rotations, ph.ProbesSent, ph.LiveAgents, ph.IdleAgents)
		case ph.Kind == scenario.PhaseLegit:
			fmt.Printf("  false positives %d", ph.FalsePositives)
		}
		fmt.Println()
	}
	if ttm := res.TTM; ttm != nil {
		switch {
		case ttm.Recovered:
			fmt.Printf("time-to-mitigation: detect %v + recover %v = %v (first attack %v, invoked %v, recovered %v)\n",
				ttm.DetectDelay, ttm.RecoveryDelay, ttm.Total,
				ttm.FirstAttackAt, ttm.InvokedAt, ttm.RecoveredAt)
		case ttm.Invoked:
			fmt.Printf("time-to-mitigation: detected after %v, drop rate never reached the recovery threshold\n", ttm.DetectDelay)
		default:
			fmt.Printf("time-to-mitigation: defense never invoked\n")
		}
	}

	if sc.dataset != "" {
		if strings.HasSuffix(sc.dataset, ".dfx2") {
			b, err := flowexport.MarshalLabeled(res.Scenario, res.Dataset)
			if err != nil {
				log.Fatalf("dataset export: %v (use .csv for runs beyond one datagram)", err)
			}
			if err := os.WriteFile(sc.dataset, b, 0o644); err != nil {
				log.Fatal(err)
			}
		} else {
			f, err := os.Create(sc.dataset)
			if err != nil {
				log.Fatal(err)
			}
			if err := flowexport.WriteLabeledCSV(f, res.Dataset); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("wrote labeled dataset: %s (%d flow records)\n", sc.dataset, len(res.Dataset))
	}
}

// runRestored boots one or more scenario cells from a world snapshot:
// decode the image once, then per cell restore a fresh world, re-drive
// the crash-recovery journal replay, and run the attack phase with a
// per-cell attack seed. Restore + replay is seconds where the cold
// path (generate, converge, deploy) is tens of seconds at paper scale.
func runRestored(path string, workers, sweep int, sc runOpts) {
	start := time.Now()
	img, err := snapshot.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read world snapshot: %s (%.2fs)\n", path, time.Since(start).Seconds())

	cells := sweep
	if cells < 1 {
		cells = 1
	}
	for cell := 0; cell < cells; cell++ {
		start := time.Now()
		world, err := snapshot.Restore(img, snapshot.Options{Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		if world.Sys == nil {
			log.Fatal("image has no deployed system; write one with -snapshot")
		}
		if err := world.Sys.RestartAll(); err != nil {
			log.Fatal(err)
		}
		if err := world.Sys.Settle(); err != nil {
			log.Fatal(err)
		}
		deployers := world.Sys.Deployed()
		cellSc := sc
		cellSc.seed += int64(cell)
		cellSc.seedOffset = int64(cell)
		if cells > 1 {
			fmt.Printf("\n=== cell %d/%d (attack seed %d) ===\n", cell+1, cells, cellSc.seed)
		}
		fmt.Printf("restored %d ASes, %d DAS; recovery settled in %.2fs\n",
			world.Net.Topo.NumASes(), len(deployers), time.Since(start).Seconds())

		runAttack(world.Sys, world.Eng, deployers, cellSc)
		if world.Eng != nil {
			world.Eng.Close()
		}
		fmt.Printf("cell wall time %.2fs\n", time.Since(start).Seconds())
	}
}
