// discs-node runs one DISCS DAS controller plus its border-router data
// plane as a long-lived service: JSON config, TCP(+TLS) transport to
// peer controllers, and an admin HTTP endpoint with Prometheus
// /metrics and /healthz.
//
//	discs-node -config node.json        # serve one node
//	discs-node -pubkey -name ctrl.as7 -seed 7
//	                                    # print the securechan public key
//	                                    # a node with that identity will
//	                                    # assume (for peers' config files)
//	discs-node -loadgen                 # loopback fleet smoke run
//	discs-node -loadgen -burst 256      # + high-rate batch phase (Mpps)
//
// In serve mode, SIGHUP re-reads the config file and applies the peer
// set (addresses repointed, new peers announced); SIGINT/SIGTERM shut
// down gracefully.
//
// In loadgen mode, the process boots an N-node fleet over real
// loopback sockets, waits for peering and key negotiation, invokes
// DP+CDP protection for the last node's prefix, pushes legitimate,
// spoofed, and unstamped flows through it, then scrapes the victim's
// live /metrics endpoint and verifies the defense outcome — a
// self-contained end-to-end check of the whole service stack. Exit
// status 0 means every class of traffic landed where the paper says it
// should.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"regexp"
	"strconv"
	"syscall"
	"time"

	"discs/internal/core"
	"discs/internal/scenario"
	"discs/internal/service"
)

func main() {
	log.SetFlags(0)
	var (
		configPath = flag.String("config", "", "JSON config file (serve mode)")
		loadgen    = flag.Bool("loadgen", false, "run a loopback fleet loadgen instead of serving")
		pubkey     = flag.Bool("pubkey", false, "print the public key for -name/-seed and exit")
		name       = flag.String("name", "", "identity name for -pubkey")
		seed       = flag.Int64("seed", 0, "identity seed for -pubkey")
		nodes      = flag.Int("nodes", 3, "fleet size for -loadgen (2..16)")
		flows      = flag.Int("flows", 50, "flows per traffic class for -loadgen")
		burst      = flag.Int("burst", 0, "after the classic run, push this many packets per burst through the batch path (-loadgen; 0 disables)")
		packets    = flag.Int("packets", 200000, "total packets for the -burst high-rate phase")
		useTLS     = flag.Bool("tls", true, "wrap fleet transport in TLS for -loadgen")
		timeout    = flag.Duration("timeout", 60*time.Second, "overall -loadgen deadline")
		scenPath   = flag.String("scenario", "", "with -loadgen: drive the fleet through a declarative scenario spec (JSON) instead of the classic three-class run")
	)
	flag.Parse()

	switch {
	case *pubkey:
		if *name == "" {
			log.Fatal("discs-node: -pubkey needs -name (and usually -seed)")
		}
		id, err := service.NodeIdentity(*name, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(service.PubHex(id))
	case *loadgen && *scenPath != "":
		if err := runScenarioLoadgen(*nodes, *scenPath, *useTLS, *timeout); err != nil {
			log.Fatal(err)
		}
	case *loadgen:
		if err := runLoadgen(*nodes, *flows, *burst, *packets, *useTLS, *timeout); err != nil {
			log.Fatal(err)
		}
	case *configPath != "":
		if err := serve(*configPath); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// serve runs one node until SIGINT/SIGTERM, re-reading the config on
// SIGHUP.
func serve(path string) error {
	cfg, err := service.LoadConfig(path)
	if err != nil {
		return err
	}
	n, err := service.NewNode(cfg)
	if err != nil {
		return err
	}
	if err := n.Start(); err != nil {
		n.Close()
		return err
	}
	log.Printf("discs-node: %s (AS%d) transport %s admin %s", n.Name(), n.AS(), n.Addr(), n.AdminAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for s := range sig {
		if s != syscall.SIGHUP {
			log.Printf("discs-node: %v, shutting down", s)
			return n.Close()
		}
		cfg, err := service.LoadConfig(path)
		if err != nil {
			log.Printf("discs-node: reload: %v (keeping old config)", err)
			continue
		}
		if err := n.Reload(cfg); err != nil {
			log.Printf("discs-node: reload: %v (keeping old config)", err)
			continue
		}
		log.Printf("discs-node: reloaded %s (%d peers)", path, len(cfg.Peers))
	}
	return nil
}

// runLoadgen is the self-checking fleet run behind `make node-smoke`.
func runLoadgen(nodes, flows, burst, packets int, useTLS bool, timeout time.Duration) error {
	if nodes < 2 || nodes > 16 {
		return fmt.Errorf("discs-node: -nodes must be in 2..16")
	}
	deadline := time.Now().Add(timeout)
	f, err := service.NewFleet(service.FleetOptions{N: nodes, TLS: useTLS, Admin: true, BaseSeed: time.Now().UnixNano() % 1000})
	if err != nil {
		return err
	}
	defer f.Close()
	for i, n := range f.Nodes {
		log.Printf("discs-node: fleet[%d] %s (AS%d) transport %s admin http://%s", i, n.Name(), n.AS(), n.Addr(), n.AdminAddr())
	}
	if err := f.WaitReady(time.Until(deadline)); err != nil {
		return err
	}
	log.Printf("discs-node: fleet peered, keys negotiated")

	victim, src := nodes-1, 0
	if err := f.Protect(victim, time.Until(deadline)); err != nil {
		return err
	}
	log.Printf("discs-node: DP+CDP deployed for %s", service.FleetPrefix(victim))
	time.Sleep(200 * time.Millisecond) // let the grace interval lapse

	rep := f.Loadgen(src, victim, flows)
	log.Printf("discs-node: loadgen legit %d/%d stamped, spoofed %d/%d blocked at source, %d raw injected",
		rep.LegitStamped, rep.LegitSent, rep.SpoofedBlocked, rep.SpoofedSent, rep.RawInjected)
	if rep.LegitStamped != flows || rep.SpoofedBlocked != flows || rep.RawInjected != flows {
		return fmt.Errorf("discs-node: loadgen outcomes off target")
	}

	// The victim's own metrics must agree: every legit flow verified and
	// delivered, every raw injection dropped.
	v := f.Nodes[victim]
	want := uint64(flows)
	for {
		snap := v.Stats()
		scope := fmt.Sprintf("as%d.", v.AS())
		if snap.Get(scope+service.MetricNodeRxDelivered) >= want &&
			snap.Get(scope+service.MetricNodeRxDropped) >= want &&
			snap.Get(scope+core.MetricRouterInVerified) >= want {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("discs-node: victim metrics incomplete: delivered %d dropped %d verified %d (want %d each)",
				snap.Get(scope+service.MetricNodeRxDelivered), snap.Get(scope+service.MetricNodeRxDropped),
				snap.Get(scope+core.MetricRouterInVerified), want)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the same numbers must be visible on the live Prometheus scrape.
	verified, err := scrapeCounter(v.AdminAddr(), fmt.Sprintf(`discs_router_in_verified{as="%d"}`, v.AS()))
	if err != nil {
		return err
	}
	if verified < float64(flows) {
		return fmt.Errorf("discs-node: /metrics verified counter %v < %d", verified, flows)
	}
	resp, err := http.Get("http://" + v.AdminAddr() + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("discs-node: victim /healthz status %d", resp.StatusCode)
	}
	log.Printf("discs-node: /metrics verified=%v, /healthz ok — smoke run passed", verified)

	if burst > 0 {
		// High-rate phase: packet trains through the batch entry points
		// (ProcessOutboundBatch → FrameKindDataBurst → inbound worker
		// pool), reporting the achieved source-side rate.
		before := v.Stats().Get(fmt.Sprintf("as%d.%s", v.AS(), service.MetricNodeRxDelivered))
		rep := f.LoadgenBurst(src, victim, packets, burst)
		if rep.Sent != packets || rep.Stamped != rep.Packets {
			return fmt.Errorf("discs-node: burst phase lost packets: %+v", rep)
		}
		want := before + uint64(rep.Sent)
		for v.Stats().Get(fmt.Sprintf("as%d.%s", v.AS(), service.MetricNodeRxDelivered)) < want {
			if time.Now().After(deadline) {
				return fmt.Errorf("discs-node: burst delivery incomplete: %d/%d",
					v.Stats().Get(fmt.Sprintf("as%d.%s", v.AS(), service.MetricNodeRxDelivered))-before, rep.Sent)
			}
			time.Sleep(10 * time.Millisecond)
		}
		st, _ := f.Nodes[src].Transport().PeerStats(v.Name())
		log.Printf("discs-node: burst %d packets in %v — %.3f Mpps, %d train frames, %d wire bytes",
			rep.Packets, rep.Elapsed.Round(time.Millisecond), rep.Mpps(), st.FramesSent, st.BytesSent)
	}
	return nil
}

// runScenarioLoadgen boots a fleet and drives it through the
// service-compatible phases of a declarative scenario spec — the same
// JSON files discs-sim -scenario runs on the simulator, replayed over
// real loopback TCP(+TLS) against real border routers.
func runScenarioLoadgen(nodes int, path string, useTLS bool, timeout time.Duration) error {
	if nodes < 2 || nodes > 16 {
		return fmt.Errorf("discs-node: -nodes must be in 2..16")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := scenario.Parse(raw)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(timeout)
	f, err := service.NewFleet(service.FleetOptions{N: nodes, TLS: useTLS, BaseSeed: time.Now().UnixNano() % 1000})
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.WaitReady(time.Until(deadline)); err != nil {
		return err
	}
	victim := nodes - 1
	log.Printf("discs-node: fleet of %d peered; scenario %q against %s (%s)",
		nodes, spec.Name, f.Nodes[victim].Name(), service.FleetPrefix(victim))

	reports, err := f.RunScenario(spec, victim, time.Until(deadline))
	for _, rep := range reports {
		switch rep.Kind {
		case scenario.PhaseInvoke:
			log.Printf("discs-node: phase %-18s invoke: %d peers deployed", rep.Name, rep.Invoked)
		case scenario.PhaseQuiet:
			log.Printf("discs-node: phase %-18s quiet", rep.Name)
		default:
			log.Printf("discs-node: phase %-18s %s: %d sent, %d stamped, %d blocked at source",
				rep.Name, rep.Kind, rep.Sent, rep.Stamped, rep.Blocked)
		}
	}
	return err
}

// scrapeCounter fetches /metrics and extracts one series value.
func scrapeCounter(addr, series string) (float64, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(series) + ` (\S+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		return 0, fmt.Errorf("discs-node: series %s not found in /metrics", series)
	}
	return strconv.ParseFloat(string(m[1]), 64)
}
