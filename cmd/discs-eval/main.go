// Command discs-eval regenerates the evaluation figures of the DISCS
// paper (ICPP 2015) as tab-separated tables:
//
//	discs-eval -fig 5     deployment incentives vs deployment ratio (Fig. 5)
//	discs-eval -fig 6a    cumulated address ratio per strategy (Fig. 6a)
//	discs-eval -fig 6b    incentives per strategy, whole process (Fig. 6b)
//	discs-eval -fig 6c    incentives per strategy, early stage (Fig. 6c)
//	discs-eval -fig 7a    global spoofing reduction, whole process (Fig. 7a)
//	discs-eval -fig 7b    global spoofing reduction, early stage (Fig. 7b)
//	discs-eval -fig all   everything, with headers
//
// With -metrics it instead emits the interval time series of an
// observability export (written by `discs-sim -metrics`) as TSV, ready
// for the same plotting pipeline as the figures.
//
// The Internet is synthetic (see DESIGN.md substitution #1) but
// paper-scale by default: 44 036 ASes, ~179k prefixes, piecewise-Pareto address
// space.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"discs/internal/cli"
	"discs/internal/eval"
	"discs/internal/obs"
	"discs/internal/topology"
)

func main() {
	cli.Init("discs-eval")
	// The figure math needs only the per-AS address-space ratios, so
	// links are skipped; everything else comes from the calibrated
	// paper-scale defaults (piecewise-Pareto head + Zipf tail), not an
	// ad-hoc flat-Zipf config.
	baseCfg := topology.DefaultGenConfig()
	baseCfg.SkipLinks = true
	topoFlags := cli.RegisterTopoFlags(baseCfg)
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 5, 6a, 6b, 6c, 7a, 7b, all")
		runs    = flag.Int("runs", 50, "random-deployment repetitions for figure 5")
		samples = flag.Int("samples", 60, "sample points per curve")
		early   = flag.Int("early", 200, "deployer cutoff for the early-stage figures (6c uses this; 7b uses 1000)")
		metrics = flag.String("metrics", "", "emit the time series of this observability export instead of a figure")
		series  = flag.String("series", "netsim.delivered,router.out_stamped,router.in_dropped",
			"comma-separated metrics for the -metrics series")
	)
	flag.Parse()

	if *metrics != "" {
		ex, err := obs.ReadExportFile(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		if err := cli.WriteSeriesTSV(os.Stdout, ex.Points, splitList(*series)); err != nil {
			log.Fatal(err)
		}
		return
	}

	topo, err := topoFlags.Build(baseCfg)
	if err != nil {
		log.Fatal(err)
	}
	r := eval.FromTopology(topo)
	seed := topoFlags.Seed

	run := func(name string, fn func() error) {
		fmt.Printf("# figure %s\n", name)
		if err := fn(); err != nil {
			log.Fatalf("figure %s: %v", name, err)
		}
		fmt.Println()
	}

	figures := map[string]func() error{
		"5": func() error {
			pts, err := eval.MeanIncentiveCurve(r, *runs, *samples, seed)
			if err != nil {
				return err
			}
			return eval.WriteTSV(os.Stdout, []string{"DP", "CDP", "DP+CDP"}, pts)
		},
		"6a": func() error {
			curves, err := eval.StrategyCurves(r, *samples, seed,
				func(r *eval.Ratios, order []topology.ASN, samples int) ([]eval.Point, error) {
					return eval.CumulativeRatioCurve(r, order, samples), nil
				})
			if err != nil {
				return err
			}
			return writeStrategies(curves, "cumulated")
		},
		"6b": func() error {
			curves, err := eval.StrategyCurves(r, *samples, seed, incentiveBoth)
			if err != nil {
				return err
			}
			return writeStrategies(curves, "DP+CDP")
		},
		"6c": func() error {
			curves, err := earlyStrategyCurves(r, *early, *samples, seed, incentiveBoth)
			if err != nil {
				return err
			}
			return writeStrategies(curves, "DP+CDP")
		},
		"7a": func() error {
			curves, err := eval.StrategyCurves(r, *samples, seed, eval.EffectivenessCurve)
			if err != nil {
				return err
			}
			return writeStrategies(curves, "effectiveness")
		},
		"7b": func() error {
			curves, err := earlyStrategyCurves(r, 1000, *samples, seed, eval.EffectivenessCurve)
			if err != nil {
				return err
			}
			return writeStrategies(curves, "effectiveness")
		},
	}

	if *fig == "all" {
		for _, name := range []string{"5", "6a", "6b", "6c", "7a", "7b"} {
			run(name, figures[name])
		}
		return
	}
	fn, ok := figures[*fig]
	if !ok {
		log.Fatalf("unknown figure %q (want 5, 6a, 6b, 6c, 7a, 7b, all)", *fig)
	}
	run(*fig, fn)
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// incentiveBoth adapts IncentiveCurve to the single DP+CDP series used
// by figures 6b/6c.
func incentiveBoth(r *eval.Ratios, order []topology.ASN, samples int) ([]eval.Point, error) {
	return eval.IncentiveCurve(r, order, samples)
}

// earlyStrategyCurves truncates each strategy's order to the first
// `cut` deployers (the "early stage" panels).
func earlyStrategyCurves(r *eval.Ratios, cut, samples int, seed int64,
	fn func(*eval.Ratios, []topology.ASN, int) ([]eval.Point, error)) (map[string][]eval.Point, error) {
	trunc := func(rr *eval.Ratios, order []topology.ASN, s int) ([]eval.Point, error) {
		if len(order) > cut {
			order = order[:cut]
		}
		return fn(rr, order, s)
	}
	return eval.StrategyCurves(r, samples, seed, trunc)
}

// writeStrategies prints one TSV block per strategy.
func writeStrategies(curves map[string][]eval.Point, series string) error {
	for _, name := range []string{"uniform", "random", "optimal"} {
		fmt.Printf("## strategy %s\n", name)
		if err := eval.WriteTSV(os.Stdout, []string{series}, curves[name]); err != nil {
			return err
		}
	}
	return nil
}
