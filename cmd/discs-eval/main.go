// Command discs-eval regenerates the evaluation figures of the DISCS
// paper (ICPP 2015) as tab-separated tables:
//
//	discs-eval -fig 5     deployment incentives vs deployment ratio (Fig. 5)
//	discs-eval -fig 6a    cumulated address ratio per strategy (Fig. 6a)
//	discs-eval -fig 6b    incentives per strategy, whole process (Fig. 6b)
//	discs-eval -fig 6c    incentives per strategy, early stage (Fig. 6c)
//	discs-eval -fig 7a    global spoofing reduction, whole process (Fig. 7a)
//	discs-eval -fig 7b    global spoofing reduction, early stage (Fig. 7b)
//	discs-eval -fig all   everything, with headers
//
// The Internet is synthetic (see DESIGN.md substitution #1) but
// paper-scale by default: 44 036 ASes, ~179k prefixes, piecewise-Pareto address
// space.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"discs/internal/eval"
	"discs/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("discs-eval: ")
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 5, 6a, 6b, 6c, 7a, 7b, all")
		nASes   = flag.Int("ases", 44036, "number of ASes in the synthetic Internet")
		nPfx    = flag.Int("prefixes", 442000, "target number of prefixes")
		zipf    = flag.Float64("zipf", 1.1, "Zipf exponent of the AS size distribution")
		seed    = flag.Int64("seed", 1, "generator seed")
		runs    = flag.Int("runs", 50, "random-deployment repetitions for figure 5")
		samples = flag.Int("samples", 60, "sample points per curve")
		early   = flag.Int("early", 200, "deployer cutoff for the early-stage figures (6c uses this; 7b uses 1000)")
	)
	flag.Parse()

	topo, err := topology.GenerateInternet(topology.GenConfig{
		NumASes: *nASes, NumPrefixes: *nPfx, ZipfExponent: *zipf,
		Seed: *seed, SkipLinks: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	r := eval.FromTopology(topo)

	run := func(name string, fn func() error) {
		fmt.Printf("# figure %s\n", name)
		if err := fn(); err != nil {
			log.Fatalf("figure %s: %v", name, err)
		}
		fmt.Println()
	}

	figures := map[string]func() error{
		"5": func() error {
			pts, err := eval.MeanIncentiveCurve(r, *runs, *samples, *seed)
			if err != nil {
				return err
			}
			return eval.WriteTSV(os.Stdout, []string{"DP", "CDP", "DP+CDP"}, pts)
		},
		"6a": func() error {
			curves, err := eval.StrategyCurves(r, *samples, *seed,
				func(r *eval.Ratios, order []topology.ASN, samples int) ([]eval.Point, error) {
					return eval.CumulativeRatioCurve(r, order, samples), nil
				})
			if err != nil {
				return err
			}
			return writeStrategies(curves, "cumulated")
		},
		"6b": func() error {
			curves, err := eval.StrategyCurves(r, *samples, *seed, incentiveBoth)
			if err != nil {
				return err
			}
			return writeStrategies(curves, "DP+CDP")
		},
		"6c": func() error {
			curves, err := earlyStrategyCurves(r, *early, *samples, *seed, incentiveBoth)
			if err != nil {
				return err
			}
			return writeStrategies(curves, "DP+CDP")
		},
		"7a": func() error {
			curves, err := eval.StrategyCurves(r, *samples, *seed, eval.EffectivenessCurve)
			if err != nil {
				return err
			}
			return writeStrategies(curves, "effectiveness")
		},
		"7b": func() error {
			curves, err := earlyStrategyCurves(r, 1000, *samples, *seed, eval.EffectivenessCurve)
			if err != nil {
				return err
			}
			return writeStrategies(curves, "effectiveness")
		},
	}

	if *fig == "all" {
		for _, name := range []string{"5", "6a", "6b", "6c", "7a", "7b"} {
			run(name, figures[name])
		}
		return
	}
	fn, ok := figures[*fig]
	if !ok {
		log.Fatalf("unknown figure %q (want 5, 6a, 6b, 6c, 7a, 7b, all)", *fig)
	}
	run(*fig, fn)
}

// incentiveBoth adapts IncentiveCurve to the single DP+CDP series used
// by figures 6b/6c.
func incentiveBoth(r *eval.Ratios, order []topology.ASN, samples int) ([]eval.Point, error) {
	return eval.IncentiveCurve(r, order, samples)
}

// earlyStrategyCurves truncates each strategy's order to the first
// `cut` deployers (the "early stage" panels).
func earlyStrategyCurves(r *eval.Ratios, cut, samples int, seed int64,
	fn func(*eval.Ratios, []topology.ASN, int) ([]eval.Point, error)) (map[string][]eval.Point, error) {
	trunc := func(rr *eval.Ratios, order []topology.ASN, s int) ([]eval.Point, error) {
		if len(order) > cut {
			order = order[:cut]
		}
		return fn(rr, order, s)
	}
	return eval.StrategyCurves(r, samples, seed, trunc)
}

// writeStrategies prints one TSV block per strategy.
func writeStrategies(curves map[string][]eval.Point, series string) error {
	for _, name := range []string{"uniform", "random", "optimal"} {
		fmt.Printf("## strategy %s\n", name)
		if err := eval.WriteTSV(os.Stdout, []string{series}, curves[name]); err != nil {
			return err
		}
	}
	return nil
}
