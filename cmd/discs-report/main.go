// Command discs-report regenerates every headline number of the
// paper's evaluation and prints a paper-vs-measured markdown table —
// the automated backing for EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"

	"discs/internal/attack"
	"discs/internal/cost"
	"discs/internal/eval"
	"discs/internal/topology"
)

type row struct {
	name     string
	paper    string
	measured string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("discs-report: ")
	var (
		seed    = flag.Int64("seed", 1, "synthetic Internet seed")
		runs    = flag.Int("runs", 10, "random-deployment repetitions")
		mcFlows = flag.Int("mc-flows", 50000, "Monte-Carlo flow samples")
	)
	flag.Parse()

	cfg := topology.DefaultGenConfig()
	cfg.Seed = *seed
	cfg.SkipLinks = true
	topo, err := topology.GenerateInternet(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r := eval.FromTopology(topo)
	var rows []row
	add := func(name, paper, format string, v float64) {
		rows = append(rows, row{name, paper, fmt.Sprintf(format, v)})
	}

	// --- Figure 5: random deployment incentives -------------------------
	pts, err := eval.MeanIncentiveCurve(r, *runs, 21, *seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		if p.Ratio >= 0.09 && p.Ratio <= 0.11 {
			add("Fig 5: incentive @10% random deployment", "0.1688", "%.4f", p.Y["DP+CDP"])
		}
		if p.Ratio >= 0.49 && p.Ratio <= 0.51 {
			add("Fig 5: incentive @50% random deployment", "0.6865", "%.4f", p.Y["DP+CDP"])
		}
	}

	// --- Figures 6/7: optimal strategy checkpoints ----------------------
	acc := eval.NewAccumulator(r)
	order := r.OptimalOrder()
	for k := 0; k < 629; k++ {
		if err := acc.Deploy(order[k]); err != nil {
			log.Fatal(err)
		}
		switch k + 1 {
		case 50:
			add("Fig 6a: address share of 50 largest", "≈0.52 (implied)", "%.3f", acc.DeployedRatio())
			add("Fig 6c: incentive @50 largest", "0.68", "%.3f", acc.IncBoth())
			add("Fig 7b: effectiveness @50 largest", "0.41", "%.3f", acc.Effectiveness())
		case 200:
			add("Fig 6c: incentive @200 largest", "0.88", "%.3f", acc.IncBoth())
		case 629:
			add("Fig 6a: address share of 629 largest", "≈0.90 (implied)", "%.3f", acc.DeployedRatio())
			add("Fig 7b: effectiveness @629 largest", "0.90", "%.3f", acc.Effectiveness())
		}
	}

	// --- Monte-Carlo cross-check (X1) ------------------------------------
	deployed := order[:50]
	closed := eval.NewAccumulator(r)
	for _, asn := range deployed {
		closed.Deploy(asn)
	}
	mc := eval.MonteCarloEffectiveness(topo, deployed, attack.DDDoS, *mcFlows, *seed)
	add("X1: flow-level MC effectiveness @50 largest", "matches closed form", "%.3f", mc)

	// --- §VI-C cost model -------------------------------------------------
	c := cost.Controller(cost.Defaults())
	rt := cost.Router(cost.Defaults())
	add("§VI-C: controller total memory (MB)", "463.1", "%.1f", c.TotalMemoryBytes/1e6)
	add("§VI-C: key negotiations (/min)", "6.1", "%.1f", c.KeyNegotiationsPerMin)
	add("§VI-C: invocations (/min)", "1.1", "%.1f", c.InvocationsPerMin)
	add("§VI-C: SSL connections under attack (/s)", "147", "%.0f", c.ConnPerSecOnAttack)
	add("§VI-C: controller CPU (%)", "7.3", "%.1f", c.CPUUtilization*100)
	add("§VI-C: controller bandwidth (Mbps)", "1.76", "%.2f", c.BandwidthMbps)
	add("§VI-C: router SRAM (MB)", "3.5", "%.1f", rt.SRAMBytes/1e6)
	add("§VI-C: AES-CMAC IPv4 (Mpps/core)", "≈8", "%.2f", rt.V4MACPerSec/1e6)
	add("§VI-C: AES-CMAC IPv6 (Mpps/core)", "≈5.33", "%.2f", rt.V6MACPerSec/1e6)
	add("§VI-C: IPv4 line rate (Gbps)", "26.25", "%.2f", rt.V4Gbps)
	add("§VI-C: IPv6 line rate (Gbps)", "18.33", "%.2f", rt.V6Gbps)
	add("§VI-C: IPv6 goodput loss (%)", "≈1.6", "%.2f", rt.V6GoodputLoss*100)

	fmt.Printf("# DISCS reproduction report (seed %d, %d ASes, %d prefixes)\n\n",
		*seed, topo.NumASes(), topo.Pfx2AS().Len())
	fmt.Println("| Quantity | Paper | Measured |")
	fmt.Println("|---|---|---|")
	for _, rw := range rows {
		fmt.Printf("| %s | %s | %s |\n", rw.name, rw.paper, rw.measured)
	}
}
