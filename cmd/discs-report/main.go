// Command discs-report renders markdown reports.
//
// Without flags it regenerates every headline number of the paper's
// evaluation as a paper-vs-measured table — the automated backing for
// EXPERIMENTS.md.
//
// With -metrics it instead renders the observability export written by
// `discs-sim -metrics`: fleet-wide final counters, the interval time
// series and an event-log summary, all in simulated time.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"discs/internal/attack"
	"discs/internal/cli"
	"discs/internal/cost"
	"discs/internal/eval"
	"discs/internal/obs"
	"discs/internal/topology"
)

func main() {
	cli.Init("discs-report")
	topoFlags := cli.RegisterTopoFlags(topology.DefaultGenConfig())
	var (
		runs    = flag.Int("runs", 10, "random-deployment repetitions")
		mcFlows = flag.Int("mc-flows", 50000, "Monte-Carlo flow samples")
		metrics = flag.String("metrics", "", "render the observability export at this path instead of the paper table")
		series  = flag.String("series", "netsim.delivered,router.out_stamped,router.in_dropped,ctrl.msgs_sent",
			"comma-separated metrics for the -metrics time-series section")
	)
	flag.Parse()

	if *metrics != "" {
		ex, err := obs.ReadExportFile(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		if err := renderExport(ex, splitList(*series)); err != nil {
			log.Fatal(err)
		}
		return
	}
	paperTable(topoFlags, *runs, *mcFlows)
}

// renderExport prints the markdown view of one observability export.
func renderExport(ex *obs.Export, series []string) error {
	fmt.Printf("# DISCS observability report (%s)\n\n", ex.GeneratedBy)
	fmt.Printf("final snapshot at t=%.3fs simulated; %d interval points every %.3fs; %d events (%d dropped)\n\n",
		cli.Seconds(ex.Final.AtNanos), len(ex.Points),
		cli.Seconds(ex.IntervalNanos), len(ex.Events), ex.EventsDropped)

	fmt.Println("## fleet totals")
	fmt.Println()
	agg := cli.AggregateScopes(ex.Final)
	t := cli.NewTable("Metric", "Total")
	for _, name := range agg.Names() {
		t.Row(name, fmt.Sprintf("%d", agg.Get(name)))
	}
	for _, name := range gaugeNames(agg) {
		t.Row(name+" (gauge)", fmt.Sprintf("%d", agg.GetGauge(name)))
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}

	if len(ex.Points) > 0 {
		fmt.Println()
		fmt.Println("## time series (per-interval deltas, fleet-wide)")
		fmt.Println()
		fmt.Println("```tsv")
		if err := cli.WriteSeriesTSV(os.Stdout, ex.Points, series); err != nil {
			return err
		}
		fmt.Println("```")
	}

	if len(ex.Events) > 0 {
		fmt.Println()
		fmt.Println("## events by kind")
		fmt.Println()
		et := cli.NewTable("Kind", "Count")
		for _, kc := range cli.EventCounts(ex.Events) {
			et.Row(kc.Kind, fmt.Sprintf("%d", kc.N))
		}
		if err := et.Write(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// gaugeNames returns the snapshot's gauge names in sorted order.
func gaugeNames(s obs.Snapshot) []string {
	names := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// paperTable is the legacy mode: regenerate the paper's evaluation
// checkpoints and print paper-vs-measured.
func paperTable(topoFlags *cli.TopoFlags, runs, mcFlows int) {
	base := topology.DefaultGenConfig()
	base.SkipLinks = true
	topo, err := topoFlags.Build(base)
	if err != nil {
		log.Fatal(err)
	}
	r := eval.FromTopology(topo)
	t := cli.NewTable("Quantity", "Paper", "Measured")
	add := func(name, paper, format string, v float64) {
		t.Row(name, paper, fmt.Sprintf(format, v))
	}

	// --- Figure 5: random deployment incentives -------------------------
	pts, err := eval.MeanIncentiveCurve(r, runs, 21, topoFlags.Seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		if p.Ratio >= 0.09 && p.Ratio <= 0.11 {
			add("Fig 5: incentive @10% random deployment", "0.1688", "%.4f", p.Y["DP+CDP"])
		}
		if p.Ratio >= 0.49 && p.Ratio <= 0.51 {
			add("Fig 5: incentive @50% random deployment", "0.6865", "%.4f", p.Y["DP+CDP"])
		}
	}

	// --- Figures 6/7: optimal strategy checkpoints ----------------------
	acc := eval.NewAccumulator(r)
	order := r.OptimalOrder()
	for k := 0; k < 629; k++ {
		if err := acc.Deploy(order[k]); err != nil {
			log.Fatal(err)
		}
		switch k + 1 {
		case 50:
			add("Fig 6a: address share of 50 largest", "≈0.52 (implied)", "%.3f", acc.DeployedRatio())
			add("Fig 6c: incentive @50 largest", "0.68", "%.3f", acc.IncBoth())
			add("Fig 7b: effectiveness @50 largest", "0.41", "%.3f", acc.Effectiveness())
		case 200:
			add("Fig 6c: incentive @200 largest", "0.88", "%.3f", acc.IncBoth())
		case 629:
			add("Fig 6a: address share of 629 largest", "≈0.90 (implied)", "%.3f", acc.DeployedRatio())
			add("Fig 7b: effectiveness @629 largest", "0.90", "%.3f", acc.Effectiveness())
		}
	}

	// --- Monte-Carlo cross-check (X1) ------------------------------------
	deployed := order[:50]
	closed := eval.NewAccumulator(r)
	for _, asn := range deployed {
		closed.Deploy(asn)
	}
	mc := eval.MonteCarloEffectiveness(topo, deployed, attack.DDDoS, mcFlows, topoFlags.Seed)
	add("X1: flow-level MC effectiveness @50 largest", "matches closed form", "%.3f", mc)

	// --- §VI-C cost model -------------------------------------------------
	c := cost.Controller(cost.Defaults())
	rt := cost.Router(cost.Defaults())
	add("§VI-C: controller total memory (MB)", "463.1", "%.1f", c.TotalMemoryBytes/1e6)
	add("§VI-C: key negotiations (/min)", "6.1", "%.1f", c.KeyNegotiationsPerMin)
	add("§VI-C: invocations (/min)", "1.1", "%.1f", c.InvocationsPerMin)
	add("§VI-C: SSL connections under attack (/s)", "147", "%.0f", c.ConnPerSecOnAttack)
	add("§VI-C: controller CPU (%)", "7.3", "%.1f", c.CPUUtilization*100)
	add("§VI-C: controller bandwidth (Mbps)", "1.76", "%.2f", c.BandwidthMbps)
	add("§VI-C: router SRAM (MB)", "3.5", "%.1f", rt.SRAMBytes/1e6)
	add("§VI-C: AES-CMAC IPv4 (Mpps/core)", "≈8", "%.2f", rt.V4MACPerSec/1e6)
	add("§VI-C: AES-CMAC IPv6 (Mpps/core)", "≈5.33", "%.2f", rt.V6MACPerSec/1e6)
	add("§VI-C: IPv4 line rate (Gbps)", "26.25", "%.2f", rt.V4Gbps)
	add("§VI-C: IPv6 line rate (Gbps)", "18.33", "%.2f", rt.V6Gbps)
	add("§VI-C: IPv6 goodput loss (%)", "≈1.6", "%.2f", rt.V6GoodputLoss*100)

	fmt.Printf("# DISCS reproduction report (seed %d, %d ASes, %d prefixes)\n\n",
		topoFlags.Seed, topo.NumASes(), topo.Pfx2AS().Len())
	if err := t.Write(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
