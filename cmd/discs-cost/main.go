// Command discs-cost prints the §VI-C resource-consumption table of
// the DISCS paper (controller memory/CPU/bandwidth, router SRAM/CAM
// and crypto throughput), parameterized by Internet scale.
package main

import (
	"flag"
	"log"
	"os"

	"discs/internal/cli"
	"discs/internal/cost"
)

func main() {
	cli.Init("discs-cost")
	p := cost.Defaults()
	flag.IntVar(&p.NumASes, "ases", p.NumASes, "number of ASes")
	flag.IntVar(&p.NumPrefixes, "prefixes", p.NumPrefixes, "number of routable prefixes")
	flag.Float64Var(&p.RekeyDays, "rekey-days", p.RekeyDays, "key renegotiation period in days")
	flag.Float64Var(&p.AttacksPerDay, "attacks-per-day", p.AttacksPerDay, "global DDoS attack rate")
	flag.Float64Var(&p.ReactionSeconds, "reaction-seconds", p.ReactionSeconds, "invocation fan-out budget")
	flag.IntVar(&p.AvgPayload, "avg-payload", p.AvgPayload, "assumed mean payload bytes")
	flag.Parse()

	if err := cost.WriteTable(os.Stdout, p); err != nil {
		log.Fatal(err)
	}
}
